// Package sim is a synchronous message-passing network simulator for the
// LOCAL/CONGEST models of distributed computing (Peleg 2000), the setting
// of Fraigniaud, Korman and Lebhar (SPAA 2007).
//
// Execution proceeds in rounds. In every round each node receives the
// messages sent to it in the previous round, performs local computation,
// and sends at most one message per incident port. Nodes are state
// machines behind the Node interface; within a round all nodes execute
// concurrently on a goroutine pool (node processes map naturally onto
// goroutines) with a barrier between rounds, so results are deterministic
// regardless of scheduling.
//
// Information hygiene is enforced by construction: a node factory receives
// only the node's legal local input — its identifier, degree, incident
// edge weights by port, the advice string, and n — never the graph.
//
// The engine accounts rounds, message counts and message sizes in bits
// under an explicit CostModel (identifier, port and weight field widths),
// which is how upper bounds are checked against the CONGEST regime.
//
// See DESIGN.md §2.3 for the engine architecture and DESIGN.md §2.7
// for the asynchronous execution mode.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"mstadvice/internal/bitstring"
	"mstadvice/internal/graph"
)

// CostModel fixes the bit widths of message fields, derived from the
// network parameters as in the CONGEST(B) model with B = Θ(log n).
type CostModel struct {
	IDBits     int // width of a node identifier
	PortBits   int // width of a port number
	WeightBits int // width of an edge weight
}

// NewCostModel derives field widths from a graph.
func NewCostModel(g *graph.Graph) CostModel {
	maxID := int64(1)
	for u := 0; u < g.N(); u++ {
		if id := g.ID(graph.NodeID(u)); id > maxID {
			maxID = id
		}
	}
	return CostModel{
		IDBits:     bitstring.WidthFor(uint64(maxID)),
		PortBits:   bitstring.WidthFor(uint64(maxInt(g.MaxDegree()-1, 1))), // ports are 0..deg-1
		WeightBits: bitstring.WidthFor(uint64(maxInt64(int64(g.MaxWeight()), 1))),
	}
}

// Message is anything a node sends along an edge. SizeBits reports the
// message's size under a cost model; it must not depend on mutable state.
type Message interface {
	SizeBits(cm CostModel) int
}

// Received pairs an incoming message with the local port it arrived on.
type Received struct {
	Port int
	Msg  Message
}

// Send pairs an outgoing message with the local port to send it on.
type Send struct {
	Port int
	Msg  Message
}

// NodeView is the legal local input of a node: everything it may know
// before communication starts.
type NodeView struct {
	ID     int64                // this node's (distinct) identifier
	N      int                  // number of nodes in the network (standard assumption)
	Deg    int                  // number of incident edges
	PortW  []graph.Weight       // weight of the incident edge at each port
	Advice *bitstring.BitString // oracle advice (may be nil or empty)
}

// Ctx carries per-round information into a node's handlers.
type Ctx struct {
	Round int       // current round, 1-based (0 during Start)
	Pulse int       // number of quiescence pulses observed so far
	Cost  CostModel // field widths, for algorithms that size their own messages
}

// Node is a distributed algorithm instance at one node.
//
// Start is called once before round 1 and may already send. Round is
// called every round with the messages delivered this round (possibly
// none), sorted by arrival port. The inbox slice is owned by the engine
// and reused across rounds: it is valid only for the duration of the
// call, and a node must copy any Received values it wants to retain
// (retaining the messages themselves is fine — the engine never reuses
// them). Output returns the node's MST output — the port of the edge to
// its parent, or -1 for "I am the root" — and whether the node has
// terminated. A node may send in the same round it terminates; the run
// ends once every node reports done; messages delivered in that final
// round are never consumed and are reported in Result.Undelivered, so
// message totals stay conserved.
type Node interface {
	Start(ctx *Ctx, view *NodeView) []Send
	Round(ctx *Ctx, view *NodeView, inbox []Received) []Send
	Output() (parentPort int, done bool)
}

// Factory builds the algorithm instance for one node from its local view.
type Factory func(view *NodeView) Node

// Options configure a run.
type Options struct {
	// MaxRounds aborts runs that fail to terminate. 0 means 50·(n+10) + 1000.
	MaxRounds int
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// Sequential forces single-goroutine execution (useful to demonstrate
	// determinism against the parallel path).
	Sequential bool
	// EnablePulses turns on the idealized quiescence synchronizer: at the
	// start of any round with no messages in flight (and not all nodes
	// done), Ctx.Pulse increments. Self-timed algorithms use pulses as
	// global phase barriers; see DESIGN.md for the idealization note.
	EnablePulses bool
	// RecordRoundStats collects per-round message statistics.
	RecordRoundStats bool
	// CongestB, when positive, audits the run against the CONGEST(B)
	// model: every message larger than B bits counts as a violation in
	// Result.CongestViolations (the run continues; experiments report the
	// count).
	CongestB int
	// DropEvery, when positive, deterministically drops every k-th routed
	// message (fault injection: the model itself is reliable, so protocols
	// may legitimately break — tests assert they never silently emit a
	// wrong verified answer).
	DropEvery int
	// Scenario, when non-nil, schedules deterministic per-round faults —
	// link failures, repairs and weight perturbations — against named
	// edges (see Scenario). It composes with DropEvery.
	Scenario *Scenario
	// Context, when non-nil, cancels the run between rounds: a run whose
	// context expires returns ctx.Err() wrapped in a descriptive error
	// instead of finishing. The check costs one atomic load per round, so
	// long-lived servers (cmd/mstadviced) can shed decode work on
	// shutdown without leaking the engine's worker goroutines.
	Context context.Context
	// Async selects the event-driven asynchronous engine (DESIGN.md
	// §2.7) instead of the round engine. Network.Run rejects it — an
	// asynchronous run needs an AsyncFactory (Network.RunAsync);
	// advice.Run performs the wrapping through the α-synchronizer of
	// internal/synch automatically.
	Async bool
	// Latency draws per-message delivery delays in asynchronous mode;
	// nil means UniformLatency{Seed: 1} (uniform on [1, 8]).
	Latency LatencyModel
	// Scheduler is the adversarial delivery policy in asynchronous mode;
	// nil means FIFO.
	Scheduler Scheduler
}

// RoundStats are per-round message statistics.
type RoundStats struct {
	Round    int
	Messages int
	Bits     int64
}

// Result summarises a run.
//
// Message totals are conserved: every message a node hands to the router
// is counted exactly once, so Sent == Messages + Dropped + LinkDropped
// always holds, and Messages - Undelivered is the number of messages
// actually consumed by a Round handler.
type Result struct {
	Rounds      int   // rounds executed until global termination
	Pulses      int   // quiescence pulses delivered
	Messages    int64 // total messages delivered into inbox slots
	TotalBits   int64 // total message bits under the cost model
	MaxMsgBits  int   // largest single message
	ParentPorts []int // per-node outputs
	PerRound    []RoundStats
	// CongestViolations counts messages exceeding Options.CongestB.
	CongestViolations int64
	// Sent counts every message handed to the router, delivered or not.
	Sent int64
	// Dropped counts messages removed by Options.DropEvery fault injection.
	Dropped int64
	// LinkDropped counts messages discarded because a Scenario had taken
	// their link down.
	LinkDropped int64
	// Undelivered counts messages that were delivered into inbox slots in
	// the final round but never consumed, because every node had already
	// terminated (the computation is over, so the engine does not run
	// another round to hand them out). They are included in Messages. In
	// asynchronous mode these are the messages still in flight when the
	// last node terminated; they are accounted in Messages/SyncMessages
	// like every other send.
	Undelivered int64

	// Asynchronous-mode accounting (zero on synchronous runs; see
	// RunAsync and DESIGN.md §2.7).

	// VirtualTime is the virtual time of the last processed delivery.
	VirtualTime int64
	// Steps is the number of distinct virtual times at which deliveries
	// were processed.
	Steps int
	// SyncMessages counts synchronizer control messages (acks, safety
	// announcements); they are excluded from Messages so payload columns
	// stay comparable with a synchronous run.
	SyncMessages int64
	// SyncBits totals the synchronization overhead in bits: control
	// messages plus the pulse tags riding on payload messages.
	SyncBits int64
}

// Network binds a graph to the simulator and carries the immutable routing
// tables.
type Network struct {
	g    *graph.Graph
	cost CostModel
}

// NewNetwork prepares a simulator for g.
func NewNetwork(g *graph.Graph) *Network {
	return &Network{g: g, cost: NewCostModel(g)}
}

// Cost returns the network's cost model.
func (nw *Network) Cost() CostModel { return nw.cost }

// acct accumulates one worker's routing statistics within a round. It is
// padded to a cache line so workers writing their own accumulator do not
// false-share.
type acct struct {
	messages    int64
	bits        int64
	dropped     int64
	linkDropped int64
	congest     int64
	maxBits     int64
	_           [16]byte
}

// engine is the per-run state of the round executor. All per-port buffers
// are flat slices indexed by the graph's CSR half-edge offsets
// (HalfOffset(u)+port) and are allocated once per run, never per round:
// the model delivers at most one message per port per round, so a fixed
// slot per half-edge replaces the append-grown inboxes and map-based
// duplicate detection of the earlier engine.
type engine struct {
	g       *graph.Graph
	cost    CostModel
	opt     Options
	n       int
	workers int

	views    []*NodeView
	nodes    []Node
	outboxes [][]Send
	errs     []error

	// slots holds the inbox slot of every half-edge: a message routed to
	// node v on port p lands in slots[HalfOffset(v)+p]. Msg == nil marks
	// an empty slot. Slots are compacted into the node's inbox view and
	// cleared during its Round call, so a single buffer serves all rounds.
	slots []Received
	// stamps detects duplicate sends: stamps[HalfOffset(u)+port] is set to
	// the current round stamp when u sends on port, so a second send on
	// the same port in the same round is caught without a per-node map.
	stamps []uint32
	// prefix[u] is the number of messages routed by nodes < u this round;
	// together with routed it gives every message a deterministic global
	// 1-based index, which keeps DropEvery fault injection independent of
	// worker scheduling.
	prefix []int64
	routed int64 // messages routed in previous rounds

	// portW backs every view's PortW slice (one allocation); the engine
	// keeps it so Scenario weight perturbations can patch the observed
	// weights in place at the round barrier.
	portW []graph.Weight
	// Scenario state: events sorted by round, the next one to apply, and
	// the current per-edge link status.
	events    []ScenarioEvent
	nextEvent int
	linkDown  []bool

	accts []acct
	res   *Result
}

// runWorkers executes fn over contiguous node ranges on the worker pool
// and waits for all of them. fn receives the worker index for per-worker
// accumulators. With one worker it runs inline, and because all shared
// state is indexed deterministically the results are identical either way.
func (e *engine) runWorkers(fn func(w, lo, hi int)) {
	if e.workers == 1 || e.n < 2 {
		fn(0, 0, e.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (e.n + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > e.n {
			hi = e.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// firstErr returns the lowest-node error, matching the node order a
// sequential engine would report.
func (e *engine) firstErr() error {
	for u := 0; u < e.n; u++ {
		if e.errs[u] != nil {
			return e.errs[u]
		}
	}
	return nil
}

// route validates and delivers the outboxes produced in this round,
// returning the number of messages in flight for the next round. Delivery
// is parallel across senders: each message's destination slot is unique
// (one slot per half-edge), statistics go to per-worker accumulators
// merged at the barrier, and drop decisions use precomputed prefix sums,
// so the result is byte-identical for any worker count.
func (e *engine) route(round int) (int, error) {
	if err := e.firstErr(); err != nil {
		return 0, err
	}
	total := int64(0)
	for u := 0; u < e.n; u++ {
		e.prefix[u] = total
		total += int64(len(e.outboxes[u]))
	}
	if total == 0 {
		if e.opt.RecordRoundStats {
			e.res.PerRound = append(e.res.PerRound, RoundStats{Round: round})
		}
		return 0, nil
	}
	// Rounds are far below 2^32, so the stamp is unique per route call.
	stamp := uint32(round) + 1
	e.runWorkers(func(w, lo, hi int) {
		a := &e.accts[w]
		g := e.g
		for u := lo; u < hi; u++ {
			out := e.outboxes[u]
			if len(out) == 0 {
				continue
			}
			e.outboxes[u] = nil
			uid := graph.NodeID(u)
			base := g.HalfOffset(uid)
			deg := g.Degree(uid)
			gi := e.routed + e.prefix[u]
			for _, s := range out {
				if s.Port < 0 || s.Port >= deg {
					e.errs[u] = fmt.Errorf("sim: node %d sent on invalid port %d in round %d", u, s.Port, round)
					break
				}
				if e.stamps[base+s.Port] == stamp {
					e.errs[u] = fmt.Errorf("sim: node %d sent twice on port %d in round %d", u, s.Port, round)
					break
				}
				e.stamps[base+s.Port] = stamp
				if s.Msg == nil {
					e.errs[u] = fmt.Errorf("sim: node %d sent a nil message on port %d in round %d", u, s.Port, round)
					break
				}
				gi++
				h := g.HalfAt(uid, s.Port)
				if e.linkDown != nil && e.linkDown[h.Edge] {
					a.linkDropped++
					continue
				}
				if e.opt.DropEvery > 0 && gi%int64(e.opt.DropEvery) == 0 {
					a.dropped++
					continue
				}
				dp := g.DstPort(uid, s.Port)
				e.slots[g.HalfOffset(h.To)+dp] = Received{Port: dp, Msg: s.Msg}
				bits := int64(s.Msg.SizeBits(e.cost))
				a.messages++
				a.bits += bits
				if bits > a.maxBits {
					a.maxBits = bits
				}
				if e.opt.CongestB > 0 && bits > int64(e.opt.CongestB) {
					a.congest++
				}
			}
		}
	})
	e.routed += total
	var delivered, roundBits, maxBits int64
	for w := range e.accts {
		a := &e.accts[w]
		delivered += a.messages
		roundBits += a.bits
		e.res.CongestViolations += a.congest
		e.res.Dropped += a.dropped
		e.res.LinkDropped += a.linkDropped
		if a.maxBits > maxBits {
			maxBits = a.maxBits
		}
		*a = acct{}
	}
	e.res.Messages += delivered
	e.res.TotalBits += roundBits
	if int(maxBits) > e.res.MaxMsgBits {
		e.res.MaxMsgBits = int(maxBits)
	}
	if err := e.firstErr(); err != nil {
		return 0, err
	}
	if e.opt.RecordRoundStats {
		e.res.PerRound = append(e.res.PerRound, RoundStats{Round: round, Messages: int(delivered), Bits: roundBits})
	}
	return int(delivered), nil
}

// stepNode compacts node u's inbox slots into a port-sorted inbox view,
// runs its Round handler, and clears the consumed slots for the next
// delivery. Slots are already in port order, so no sorting is needed.
func (e *engine) stepNode(ctx *Ctx, u int) {
	defer capture(&e.errs[u], u, ctx.Round)
	uid := graph.NodeID(u)
	base := e.g.HalfOffset(uid)
	seg := e.slots[base : base+e.g.Degree(uid)]
	k := 0
	for p := range seg {
		if seg[p].Msg != nil {
			if k != p {
				seg[k] = seg[p]
				seg[p] = Received{}
			}
			k++
		}
	}
	e.outboxes[u] = e.nodes[u].Round(ctx, e.views[u], seg[:k:k])
	for i := 0; i < k; i++ {
		seg[i] = Received{}
	}
}

// Run executes the algorithm on every node until all nodes report done.
// advice[u] is handed to node u (nil entries become empty strings); pass a
// nil slice for no advice at all.
//
// Runs are deterministic: for a fixed graph, factory and options, every
// field of the Result — including per-round statistics and DropEvery
// fault-injection accounting — is identical for any Workers setting.
func (nw *Network) Run(factory Factory, advice []*bitstring.BitString, opt Options) (*Result, error) {
	g := nw.g
	n := g.N()
	if opt.Async {
		return nil, fmt.Errorf("sim: Options.Async needs an asynchronous node (Network.RunAsync); synchronous algorithms run async through advice.Run, which wraps them in the internal/synch α-synchronizer")
	}
	if advice != nil && len(advice) != n {
		return nil, fmt.Errorf("sim: %d advice strings for %d nodes", len(advice), n)
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 50*(n+10) + 1000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Sequential {
		workers = 1
	}

	var events []ScenarioEvent
	if opt.Scenario != nil {
		var err error
		if events, err = opt.Scenario.validate(g); err != nil {
			return nil, err
		}
	}

	nh := g.NumHalves()
	portW := make([]graph.Weight, nh) // all views' PortW, one allocation
	viewStore := make([]NodeView, n)
	views := make([]*NodeView, n)
	nodes := make([]Node, n)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		base := g.HalfOffset(uid)
		hs := g.Halves(uid)
		pw := portW[base : base+len(hs) : base+len(hs)]
		for p, h := range hs {
			pw[p] = h.W
		}
		var adv *bitstring.BitString
		if advice != nil && advice[u] != nil {
			adv = advice[u]
		} else {
			adv = bitstring.New(0)
		}
		viewStore[u] = NodeView{ID: g.ID(uid), N: n, Deg: len(hs), PortW: pw, Advice: adv}
		views[u] = &viewStore[u]
	}

	e := &engine{
		g:        g,
		cost:     nw.cost,
		opt:      opt,
		n:        n,
		workers:  workers,
		views:    views,
		nodes:    nodes,
		outboxes: make([][]Send, n),
		errs:     make([]error, n),
		slots:    make([]Received, nh),
		stamps:   make([]uint32, nh),
		prefix:   make([]int64, n),
		portW:    portW,
		events:   events,
		accts:    make([]acct, workers),
		res:      &Result{ParentPorts: make([]int, n)},
	}
	if events != nil {
		e.linkDown = make([]bool, g.M())
	}
	res := e.res

	// Round-0 events fire before the factories run, so the initial views
	// already reflect the scenario's starting state.
	e.applyEvents(0)
	for u := 0; u < n; u++ {
		nodes[u] = factory(views[u])
	}

	allDone := func() bool {
		for u := 0; u < n; u++ {
			if _, done := nodes[u].Output(); !done {
				return false
			}
		}
		return true
	}

	// Round 0: Start.
	ctx := Ctx{Round: 0, Cost: nw.cost}
	e.runWorkers(func(w, lo, hi int) {
		for u := lo; u < hi; u++ {
			func() {
				defer capture(&e.errs[u], u, 0)
				e.outboxes[u] = nodes[u].Start(&ctx, views[u])
			}()
		}
	})
	inflight, err := e.route(0)
	if err != nil {
		return nil, err
	}

	round := 0
	for !allDone() {
		if round >= maxRounds {
			return nil, fmt.Errorf("sim: no termination after %d rounds", maxRounds)
		}
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("sim: run canceled after %d rounds: %w", round, err)
			}
		}
		round++
		e.applyEvents(round)
		if opt.EnablePulses && inflight == 0 {
			ctx.Pulse++
			res.Pulses++
		}
		ctx.Round = round
		e.runWorkers(func(w, lo, hi int) {
			for u := lo; u < hi; u++ {
				e.stepNode(&ctx, u)
			}
		})
		if inflight, err = e.route(round); err != nil {
			return nil, err
		}
	}
	res.Rounds = round
	res.Sent = e.routed
	// Messages delivered in the final round are never consumed — every
	// node has terminated. Account for them explicitly so totals conserve.
	for i := range e.slots {
		if e.slots[i].Msg != nil {
			res.Undelivered++
		}
	}
	for u := 0; u < n; u++ {
		res.ParentPorts[u], _ = nodes[u].Output()
	}
	return res, nil
}

// capture converts a node panic into an engine error with context.
func capture(dst *error, u, round int) {
	if r := recover(); r != nil {
		if debugPanics {
			panic(r)
		}
		*dst = fmt.Errorf("sim: node %d panicked in round %d: %v", u, round, r)
	}
}

// debugPanics lets tests re-panic node failures to see stack traces.
var debugPanics = false

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DebugPanics toggles re-panicking of node failures (test hook).
func DebugPanics(on bool) { debugPanics = on }
