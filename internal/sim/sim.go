// Package sim is a synchronous message-passing network simulator for the
// LOCAL/CONGEST models of distributed computing (Peleg 2000), the setting
// of Fraigniaud, Korman and Lebhar (SPAA 2007).
//
// Execution proceeds in rounds. In every round each node receives the
// messages sent to it in the previous round, performs local computation,
// and sends at most one message per incident port. Nodes are state
// machines behind the Node interface; within a round all nodes execute
// concurrently on a goroutine pool (node processes map naturally onto
// goroutines) with a barrier between rounds, so results are deterministic
// regardless of scheduling.
//
// Information hygiene is enforced by construction: a node factory receives
// only the node's legal local input — its identifier, degree, incident
// edge weights by port, the advice string, and n — never the graph.
//
// The engine accounts rounds, message counts and message sizes in bits
// under an explicit CostModel (identifier, port and weight field widths),
// which is how upper bounds are checked against the CONGEST regime.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mstadvice/internal/bitstring"
	"mstadvice/internal/graph"
)

// CostModel fixes the bit widths of message fields, derived from the
// network parameters as in the CONGEST(B) model with B = Θ(log n).
type CostModel struct {
	IDBits     int // width of a node identifier
	PortBits   int // width of a port number
	WeightBits int // width of an edge weight
}

// NewCostModel derives field widths from a graph.
func NewCostModel(g *graph.Graph) CostModel {
	maxID := int64(1)
	for u := 0; u < g.N(); u++ {
		if id := g.ID(graph.NodeID(u)); id > maxID {
			maxID = id
		}
	}
	return CostModel{
		IDBits:     bitstring.WidthFor(uint64(maxID)),
		PortBits:   bitstring.WidthFor(uint64(maxInt(g.MaxDegree()-1, 1))), // ports are 0..deg-1
		WeightBits: bitstring.WidthFor(uint64(maxInt64(int64(g.MaxWeight()), 1))),
	}
}

// Message is anything a node sends along an edge. SizeBits reports the
// message's size under a cost model; it must not depend on mutable state.
type Message interface {
	SizeBits(cm CostModel) int
}

// Received pairs an incoming message with the local port it arrived on.
type Received struct {
	Port int
	Msg  Message
}

// Send pairs an outgoing message with the local port to send it on.
type Send struct {
	Port int
	Msg  Message
}

// NodeView is the legal local input of a node: everything it may know
// before communication starts.
type NodeView struct {
	ID     int64                // this node's (distinct) identifier
	N      int                  // number of nodes in the network (standard assumption)
	Deg    int                  // number of incident edges
	PortW  []graph.Weight       // weight of the incident edge at each port
	Advice *bitstring.BitString // oracle advice (may be nil or empty)
}

// Ctx carries per-round information into a node's handlers.
type Ctx struct {
	Round int       // current round, 1-based (0 during Start)
	Pulse int       // number of quiescence pulses observed so far
	Cost  CostModel // field widths, for algorithms that size their own messages
}

// Node is a distributed algorithm instance at one node.
//
// Start is called once before round 1 and may already send. Round is
// called every round with the messages delivered this round (possibly
// none). Output returns the node's MST output — the port of the edge to
// its parent, or -1 for "I am the root" — and whether the node has
// terminated. A node may send in the same round it terminates; the run
// ends once every node reports done (undelivered final messages are
// dropped, as the computation is over).
type Node interface {
	Start(ctx *Ctx, view *NodeView) []Send
	Round(ctx *Ctx, view *NodeView, inbox []Received) []Send
	Output() (parentPort int, done bool)
}

// Factory builds the algorithm instance for one node from its local view.
type Factory func(view *NodeView) Node

// Options configure a run.
type Options struct {
	// MaxRounds aborts runs that fail to terminate. 0 means 50·(n+10) + 1000.
	MaxRounds int
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// Sequential forces single-goroutine execution (useful to demonstrate
	// determinism against the parallel path).
	Sequential bool
	// EnablePulses turns on the idealized quiescence synchronizer: at the
	// start of any round with no messages in flight (and not all nodes
	// done), Ctx.Pulse increments. Self-timed algorithms use pulses as
	// global phase barriers; see DESIGN.md for the idealization note.
	EnablePulses bool
	// RecordRoundStats collects per-round message statistics.
	RecordRoundStats bool
	// CongestB, when positive, audits the run against the CONGEST(B)
	// model: every message larger than B bits counts as a violation in
	// Result.CongestViolations (the run continues; experiments report the
	// count).
	CongestB int
	// DropEvery, when positive, deterministically drops every k-th routed
	// message (fault injection: the model itself is reliable, so protocols
	// may legitimately break — tests assert they never silently emit a
	// wrong verified answer).
	DropEvery int
}

// RoundStats are per-round message statistics.
type RoundStats struct {
	Round    int
	Messages int
	Bits     int64
}

// Result summarises a run.
type Result struct {
	Rounds      int   // rounds executed until global termination
	Pulses      int   // quiescence pulses delivered
	Messages    int64 // total messages delivered
	TotalBits   int64 // total message bits under the cost model
	MaxMsgBits  int   // largest single message
	ParentPorts []int // per-node outputs
	PerRound    []RoundStats
	// CongestViolations counts messages exceeding Options.CongestB.
	CongestViolations int64
	// Dropped counts messages removed by Options.DropEvery fault injection.
	Dropped int64
}

// Network binds a graph to the simulator and carries the immutable routing
// tables.
type Network struct {
	g    *graph.Graph
	cost CostModel
}

// NewNetwork prepares a simulator for g.
func NewNetwork(g *graph.Graph) *Network {
	return &Network{g: g, cost: NewCostModel(g)}
}

// Cost returns the network's cost model.
func (nw *Network) Cost() CostModel { return nw.cost }

// Run executes the algorithm on every node until all nodes report done.
// advice[u] is handed to node u (nil entries become empty strings); pass a
// nil slice for no advice at all.
func (nw *Network) Run(factory Factory, advice []*bitstring.BitString, opt Options) (*Result, error) {
	g := nw.g
	n := g.N()
	if advice != nil && len(advice) != n {
		return nil, fmt.Errorf("sim: %d advice strings for %d nodes", len(advice), n)
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 50*(n+10) + 1000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Sequential {
		workers = 1
	}

	views := make([]*NodeView, n)
	nodes := make([]Node, n)
	for u := 0; u < n; u++ {
		pw := make([]graph.Weight, g.Degree(graph.NodeID(u)))
		for p := range pw {
			pw[p] = g.HalfAt(graph.NodeID(u), p).W
		}
		var adv *bitstring.BitString
		if advice != nil && advice[u] != nil {
			adv = advice[u]
		} else {
			adv = bitstring.New(0)
		}
		views[u] = &NodeView{ID: g.ID(graph.NodeID(u)), N: n, Deg: len(pw), PortW: pw, Advice: adv}
		nodes[u] = factory(views[u])
	}

	res := &Result{ParentPorts: make([]int, n)}
	inboxes := make([][]Received, n)
	outboxes := make([][]Send, n)
	errs := make([]error, n)
	routed := int64(0) // messages routed so far, for DropEvery

	// parallelFor runs fn(u) for every node on the worker pool.
	parallelFor := func(fn func(u int)) {
		if workers == 1 || n < 2 {
			for u := 0; u < n; u++ {
				fn(u)
			}
			return
		}
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for u := lo; u < hi; u++ {
					fn(u)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	// validate and route the outboxes produced in this round; returns the
	// number of messages in flight for the next round.
	route := func(round int) (int, error) {
		for u := 0; u < n; u++ {
			if errs[u] != nil {
				return 0, errs[u]
			}
		}
		inflight := 0
		var roundBits int64
		for u := 0; u < n; u++ {
			seen := make(map[int]bool, len(outboxes[u]))
			for _, s := range outboxes[u] {
				if s.Port < 0 || s.Port >= g.Degree(graph.NodeID(u)) {
					return 0, fmt.Errorf("sim: node %d sent on invalid port %d in round %d", u, s.Port, round)
				}
				if seen[s.Port] {
					return 0, fmt.Errorf("sim: node %d sent twice on port %d in round %d", u, s.Port, round)
				}
				seen[s.Port] = true
				routed++
				if opt.DropEvery > 0 && routed%int64(opt.DropEvery) == 0 {
					res.Dropped++
					continue
				}
				half := g.HalfAt(graph.NodeID(u), s.Port)
				dstPort := g.PortAt(half.Edge, half.To)
				inboxes[half.To] = append(inboxes[half.To], Received{Port: dstPort, Msg: s.Msg})
				bits := s.Msg.SizeBits(nw.cost)
				res.Messages++
				res.TotalBits += int64(bits)
				roundBits += int64(bits)
				if bits > res.MaxMsgBits {
					res.MaxMsgBits = bits
				}
				if opt.CongestB > 0 && bits > opt.CongestB {
					res.CongestViolations++
				}
				inflight++
			}
			outboxes[u] = nil
		}
		if opt.RecordRoundStats && round >= 0 {
			res.PerRound = append(res.PerRound, RoundStats{Round: round, Messages: inflight, Bits: roundBits})
		}
		return inflight, nil
	}

	allDone := func() bool {
		for u := 0; u < n; u++ {
			if _, done := nodes[u].Output(); !done {
				return false
			}
		}
		return true
	}

	// Round 0: Start.
	ctx := Ctx{Round: 0, Cost: nw.cost}
	parallelFor(func(u int) {
		defer capture(&errs[u], u, 0)
		outboxes[u] = nodes[u].Start(&ctx, views[u])
	})
	inflight, err := route(0)
	if err != nil {
		return nil, err
	}

	round := 0
	for !allDone() {
		if round >= maxRounds {
			return nil, fmt.Errorf("sim: no termination after %d rounds", maxRounds)
		}
		round++
		if opt.EnablePulses && inflight == 0 {
			ctx.Pulse++
			res.Pulses++
		}
		ctx.Round = round
		parallelFor(func(u int) {
			defer capture(&errs[u], u, round)
			inbox := inboxes[u]
			inboxes[u] = nil
			sort.Slice(inbox, func(a, b int) bool { return inbox[a].Port < inbox[b].Port })
			outboxes[u] = nodes[u].Round(&ctx, views[u], inbox)
		})
		if inflight, err = route(round); err != nil {
			return nil, err
		}
	}
	res.Rounds = round
	for u := 0; u < n; u++ {
		res.ParentPorts[u], _ = nodes[u].Output()
	}
	return res, nil
}

// capture converts a node panic into an engine error with context.
func capture(dst *error, u, round int) {
	if r := recover(); r != nil {
		if debugPanics {
			panic(r)
		}
		*dst = fmt.Errorf("sim: node %d panicked in round %d: %v", u, round, r)
	}
}

// debugPanics lets tests re-panic node failures to see stack traces.
var debugPanics = false

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DebugPanics toggles re-panicking of node failures (test hook).
func DebugPanics(on bool) { debugPanics = on }
