package obs

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// distributions are the shapes the quantile property test sweeps: the
// latency profiles the serving layers actually produce (tight uniform
// bodies, bimodal fast-path/slow-path splits, heavy Pareto-style
// tails).
var distributions = []struct {
	name string
	draw func(r *rand.Rand) int64
}{
	{"uniform", func(r *rand.Rand) int64 {
		return 100 + r.Int63n(10_000)
	}},
	{"bimodal", func(r *rand.Rand) int64 {
		if r.Intn(10) < 9 {
			return 200 + r.Int63n(400) // fast path
		}
		return 1_000_000 + r.Int63n(4_000_000) // slow path
	}},
	{"heavy-tail", func(r *rand.Rand) int64 {
		// Pareto-ish: x = scale / U^(1/alpha), alpha ≈ 1.2.
		u := r.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		v := 50 * math.Pow(1/u, 1/1.2)
		if v > 1e15 {
			v = 1e15
		}
		return int64(v)
	}},
	{"zero-heavy", func(r *rand.Rand) int64 {
		if r.Intn(4) == 0 {
			return 0
		}
		return r.Int63n(64)
	}},
}

// exactQuantile applies the histogram's rank rule (k = ⌈q·n⌉, 1-based)
// to the raw sorted samples.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileVsExact is the property test of the quantile math: for
// every distribution and probe quantile, the histogram's interpolated
// estimate must land in the same log₂ bucket as the exact quantile of
// the sorted raw samples — the strongest guarantee exact bucket counts
// can give (estimates are within 2x, and the bucket identity is exact).
func TestQuantileVsExact(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, dist := range distributions {
		for _, size := range []int{1, 10, 1_000, 50_000} {
			r := rand.New(rand.NewSource(int64(size) + 42))
			var h Histogram
			samples := make([]int64, size)
			for i := range samples {
				v := dist.draw(r)
				samples[i] = v
				h.Observe(v)
			}
			slices.Sort(samples)
			snap := h.Snapshot()
			if got, want := snap.Count(), uint64(size); got != want {
				t.Fatalf("%s n=%d: Count = %d, want %d", dist.name, size, got, want)
			}
			var wantSum int64
			for _, v := range samples {
				wantSum += v
			}
			if snap.Sum != wantSum {
				t.Fatalf("%s n=%d: Sum = %d, want %d", dist.name, size, snap.Sum, wantSum)
			}
			for _, q := range quantiles {
				est := snap.Quantile(q)
				exact := exactQuantile(samples, q)
				if got, want := bucketOf(int64(est)), bucketOf(exact); got != want {
					// The estimate interpolates inside the half-open bucket
					// [lo, hi); hitting exactly hi via frac == 1 is the one
					// legal boundary case (est = hi is still "within" the
					// bucket in the closed sense the docs promise).
					lo, hi := bucketBounds(want)
					if est < lo || est > hi {
						t.Errorf("%s n=%d q=%g: estimate %g (bucket %d) vs exact %d (bucket %d, [%g,%g))",
							dist.name, size, q, est, got, exact, want, lo, hi)
					}
				}
			}
		}
	}
}

// TestQuantileEmpty pins the empty-histogram contract.
func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if v := s.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty Quantile = %g, want NaN", v)
	}
	if s.Count() != 0 {
		t.Errorf("empty Count = %d", s.Count())
	}
}

// TestMergeAssociative: merging shard-local snapshots is associative
// and commutative — any aggregation tree yields the same histogram.
func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mk := func(n int, draw func(*rand.Rand) int64) HistSnapshot {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Observe(draw(r))
		}
		return h.Snapshot()
	}
	a := mk(1000, distributions[0].draw)
	b := mk(500, distributions[1].draw)
	c := mk(2000, distributions[2].draw)

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("merge is not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	if got, want := left.Count(), a.Count()+b.Count()+c.Count(); got != want {
		t.Errorf("merged Count = %d, want %d", got, want)
	}

	ba := b // commutativity
	ba.Merge(a)
	ab := a
	ab.Merge(b)
	if ab != ba {
		t.Fatalf("merge is not commutative")
	}
}

// TestObserveNegativeClamps: a backwards clock step lands in bucket 0
// and contributes nothing to the sum.
func TestObserveNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Sum != 0 {
		t.Errorf("negative observe: buckets[0]=%d sum=%d, want 1, 0", s.Buckets[0], s.Sum)
	}
}

// TestObserveAllocs pins the hot-path contract: Observe (and
// Counter.Add) allocate nothing.
func TestObserveAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %g/op", n)
	}
}
