package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (DESIGN.md §2.11). Families print in
// registration order, series in registration order within a family, so
// the output is deterministic for a deterministically wired process —
// which is what lets a golden test pin the format.

// WriteText writes the registry in Prometheus text format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type flat struct {
		name   string
		kind   metricKind
		series []*series
	}
	fams := make([]flat, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, labels := range f.order {
			ss = append(ss, f.series[labels])
		}
		fams = append(fams, flat{name: f.name, kind: f.kind, series: ss})
	}
	r.mu.Unlock() // render (and evaluate gauge funcs) outside the lock

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, f.kind, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, kind metricKind, s *series) error {
	switch kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.g.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.fn()))
		return err
	case kindHistogram:
		return writeHistogram(w, name, s.labels, s.h.Snapshot())
	}
	return nil
}

// writeHistogram emits the conventional cumulative _bucket / _sum /
// _count triplet. Only buckets up to the highest non-empty one are
// listed (plus the mandatory +Inf) — a latency histogram's tail of 40
// empty power-of-two buckets carries no information.
func writeHistogram(w io.Writer, name, labels string, snap HistSnapshot) error {
	top := 0
	for i := range snap.Buckets {
		if snap.Buckets[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += snap.Buckets[i]
		// Bucket i covers values < 2^i (bucket 0: the exact zeros), so
		// its cumulative upper bound le is 2^i - 1 in integer units.
		le := "0"
		if i > 0 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le=`+strconv.Quote(le)), cum); err != nil {
			return err
		}
	}
	total := cum
	for i := top + 1; i < numBuckets; i++ {
		total += snap.Buckets[i]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, snap.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
	return err
}

// mergeLabels splices an extra label into a rendered label string.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// formatFloat renders gauge-func values without exponent noise for the
// common cases (integral values, short decimals).
func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
