package obs

import (
	"encoding/json"
	"net/http"
)

// HTTP exposition (DESIGN.md §2.11): GET /metrics concatenates any
// number of registries (each serving component owns its own), GET
// /v1/events serves the flight recorder as JSON. The daemon mounts both
// next to net/http/pprof on its -debug-addr listener.

// MetricsHandler serves the registries' Prometheus text exposition.
func MetricsHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			if reg == nil {
				continue
			}
			if err := reg.WriteText(w); err != nil {
				return
			}
		}
	})
}

// EventsHandler serves the recorder's retained events as JSON:
// {"total": N, "events": [...]}, oldest first.
func EventsHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := rec.Events()
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"total": rec.Total(), "events": events})
	})
}
