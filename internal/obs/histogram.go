package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed histogram width: bucket 0 holds exact zeros
// (and clamped negatives), bucket i ≥ 1 holds values v with
// bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i). 64 value buckets cover
// the whole int64 range, so Observe never branches on overflow.
const numBuckets = 65

// Histogram is a fixed-bucket log₂-scaled histogram (DESIGN.md §2.11).
// Observe is allocation-free and wait-free: one atomic add into the
// value's bucket and one into the running sum. Bucket counts are exact;
// quantiles are interpolated within the matched bucket, so an estimate
// is always inside the half-open power-of-two interval that contains
// the true sample quantile.
//
// The unit is whatever the caller observes — the serving layers record
// nanoseconds — and exposition publishes the bucket upper bounds as
// plain numbers in that unit.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Negative values clamp into the zero
// bucket (a clock that stepped backwards must not corrupt the layout).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since t0 — the one-line
// latency idiom: defer-free, alloc-free.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Nanoseconds())
}

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between bucket reads; each bucket is individually exact and the
// snapshot is a consistent-enough view for exposition and merging
// (monotone per bucket, never torn within one).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a frozen histogram state: exact bucket counts and the
// value sum. Snapshots merge by bucket-wise addition, which is
// associative and commutative — shard- or replica-local histograms
// aggregate in any order to the same result.
type HistSnapshot struct {
	Buckets [numBuckets]uint64
	Sum     int64
}

// Count returns the total number of observations.
func (s *HistSnapshot) Count() uint64 {
	var n uint64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Merge adds o into s bucket-wise.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
}

// bucketBounds returns the half-open value interval [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Quantile returns the interpolated q-quantile (q ∈ [0, 1]) of the
// recorded distribution: the bucket holding the rank-⌈q·n⌉ observation
// is found by cumulative count, then the estimate interpolates linearly
// inside that bucket. The estimate therefore always lies within the
// power-of-two interval containing the exact sample quantile — at most
// a factor of 2 off, usually much closer. NaN when empty.
func (s *HistSnapshot) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the k-th smallest observation, k = ⌈q·n⌉ (≥ 1).
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cnt := s.Buckets[i]
		if cnt == 0 {
			continue
		}
		if cum+cnt >= rank {
			lo, hi := bucketBounds(i)
			// Position of the rank within this bucket, in (0, 1]:
			// interpolate as if the bucket's observations were evenly
			// spread over [lo, hi).
			frac := float64(rank-cum) / float64(cnt)
			return lo + (hi-lo)*frac
		}
		cum += cnt
	}
	// Unreachable when counts are consistent; return the top bound.
	lo, hi := bucketBounds(numBuckets - 1)
	_ = lo
	return hi
}
