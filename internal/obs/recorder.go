package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one flight-recorder entry: a coarse kind for filtering
// (publish, failover, reconnect, degraded, chaos, ...) and a formatted
// detail line.
type Event struct {
	// Seq numbers events across the recorder's lifetime, including the
	// ones the ring has already evicted, so a reader can tell "buffer
	// wrapped" from "nothing happened".
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg"`
}

// Recorder is the bounded ring-buffer flight recorder (DESIGN.md
// §2.11): the last N structured events of a serving process —
// publishes, failovers, reconnects, degraded reads, chaos phase
// transitions — kept cheaply at all times so that when the kill/restart
// drill (or production) misbehaves, the recent history is already
// captured. A nil *Recorder is a valid no-op sink: every component
// takes one optionally and records unconditionally.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // ring write position
	total uint64 // lifetime event count
}

// NewRecorder returns a recorder keeping the last n events (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]Event, 0, n)}
}

// Record appends one event. Safe on a nil recorder (drops the event).
// This is not a hot-path primitive — it formats and takes a lock — so
// callers record state transitions, not per-query traffic.
func (r *Recorder) Record(kind, format string, args ...any) {
	if r == nil {
		return
	}
	ev := Event{Time: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	ev.Seq = r.total
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
}

// Events returns the retained events, oldest first. Safe on nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Total returns the lifetime event count, including evicted events.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump writes a human-readable transcript of the retained events — the
// SIGQUIT sink. Safe on nil.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	events := r.Events()
	total := r.Total()
	fmt.Fprintf(w, "=== flight recorder: %d event(s) retained, %d total ===\n", len(events), total)
	for _, ev := range events {
		fmt.Fprintf(w, "%6d %s [%s] %s\n", ev.Seq, ev.Time.Format(time.RFC3339Nano), ev.Kind, ev.Msg)
	}
	fmt.Fprintf(w, "=== end flight recorder ===\n")
}
