// Package obs is the wire-speed observability core (DESIGN.md §2.11):
// atomic counters and gauges, fixed-bucket log₂-scaled latency
// histograms with an allocation-free Observe, a named metric registry
// with Prometheus-text-format exposition, and a bounded ring-buffer
// flight recorder for structured events.
//
// The package is dependency-free by design — it sits underneath every
// serving layer (service, replica, the daemon) and must never perturb
// the paths it measures. The hot-path operations (Counter.Add,
// Gauge.Set, Histogram.Observe) are single uncontended atomic
// read-modify-writes with zero allocations; everything that formats,
// sorts or aggregates (exposition, snapshots, quantiles) runs only at
// scrape time.
//
// Metric instances are registered once — typically at component
// construction — and then updated lock-free. Registering the same name
// and label set twice returns the same instance, so idempotent wiring
// is safe; registering one family under two metric types panics, since
// the exposition could not type the family either way.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter. Allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v exceeds the current value — the
// publish-path idiom for "highest epoch seen per shard", safe against
// concurrent writers of different entries.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind types a family for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one (family, label set) instance.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	kind   metricKind
	order  []string // label strings in registration order
	series map[string]*series
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. Registration takes the registry lock;
// metric updates never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key, value pairs into the canonical
// exposition form, sorted by key so the same set always renders (and
// dedups) identically.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the series of name+labels,
// enforcing one kind per family.
func (r *Registry) lookup(name string, kind metricKind, kv []string) *series {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter registers (or returns the existing) counter of name with the
// given alternating label key, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the lag-style metrics ("epochs behind", "seconds since last apply")
// that are a function of now, not of an event.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.lookup(name, kindGaugeFunc, labels)
	s.fn = fn
}

// Histogram registers (or returns the existing) log₂-bucketed
// histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	s := r.lookup(name, kindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// CounterValue reads a registered counter (0, false when absent) —
// the cross-check hook benches and tests scrape instead of parsing
// exposition text.
func (r *Registry) CounterValue(name string, labels ...string) (uint64, bool) {
	labelStr := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil || f.kind != kindCounter {
		return 0, false
	}
	s := f.series[labelStr]
	if s == nil || s.c == nil {
		return 0, false
	}
	return s.c.Value(), true
}

// GaugeValue reads a registered gauge or gauge func (0, false when
// absent); funcs are evaluated at the call.
func (r *Registry) GaugeValue(name string, labels ...string) (float64, bool) {
	labelStr := renderLabels(labels)
	r.mu.Lock()
	f := r.families[name]
	var s *series
	if f != nil {
		s = f.series[labelStr]
	}
	r.mu.Unlock() // evaluate funcs outside the lock: they may scrape other state
	if s == nil {
		return 0, false
	}
	switch {
	case s.g != nil:
		return float64(s.g.Value()), true
	case s.fn != nil:
		return s.fn(), true
	}
	return 0, false
}

// HistogramSnapshot reads a registered histogram's snapshot (zero,
// false when absent).
func (r *Registry) HistogramSnapshot(name string, labels ...string) (HistSnapshot, bool) {
	labelStr := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil || f.kind != kindHistogram {
		return HistSnapshot{}, false
	}
	s := f.series[labelStr]
	if s == nil || s.h == nil {
		return HistSnapshot{}, false
	}
	return s.h.Snapshot(), true
}

// Names returns the registered family names in registration order —
// the doclint hook that keeps the DESIGN.md §2.11 table honest.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}
