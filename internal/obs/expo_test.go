package obs

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format byte for byte:
// family ordering, label rendering, cumulative histogram buckets with
// power-of-two upper bounds, suppressed empty tails, the +Inf bucket
// and the _sum/_count pair.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "op", "read").Add(3)
	reg.Counter("requests_total", "op", "write").Add(1)
	reg.Gauge("log_records").Set(42)
	reg.GaugeFunc("lag_records", func() float64 { return 2 })
	h := reg.Histogram("op_latency_ns", "op", "decode")
	for _, v := range []int64{0, 1, 3, 1000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE requests_total counter
requests_total{op="read"} 3
requests_total{op="write"} 1
# TYPE log_records gauge
log_records 42
# TYPE lag_records gauge
lag_records 2
# TYPE op_latency_ns histogram
op_latency_ns_bucket{op="decode",le="0"} 1
op_latency_ns_bucket{op="decode",le="1"} 2
op_latency_ns_bucket{op="decode",le="3"} 3
op_latency_ns_bucket{op="decode",le="7"} 3
op_latency_ns_bucket{op="decode",le="15"} 3
op_latency_ns_bucket{op="decode",le="31"} 3
op_latency_ns_bucket{op="decode",le="63"} 3
op_latency_ns_bucket{op="decode",le="127"} 3
op_latency_ns_bucket{op="decode",le="255"} 3
op_latency_ns_bucket{op="decode",le="511"} 3
op_latency_ns_bucket{op="decode",le="1023"} 4
op_latency_ns_bucket{op="decode",le="+Inf"} 4
op_latency_ns_sum{op="decode"} 1004
op_latency_ns_count{op="decode"} 4
`
	if b.String() != golden {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

// TestHistogramBucketsCumulative checks the le series is monotone
// non-decreasing on a busy histogram — the invariant Prometheus
// consumers (and the quantile math) rely on.
func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	for i := int64(1); i < 100_000; i *= 3 {
		h.Observe(i)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	buckets := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		buckets++
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series regressed at %q (prev %d)", line, prev)
		}
		prev = v
	}
	if buckets == 0 {
		t.Fatal("no bucket lines emitted")
	}
}

// TestMetricsHandler: multiple registries concatenate on one /metrics.
func TestMetricsHandler(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("alpha_total").Inc()
	b.Gauge("beta").Set(-3)
	srv := httptest.NewServer(MetricsHandler(a, nil, b))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{"alpha_total 1", "beta -3", "# TYPE alpha_total counter"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
