package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "op", "read")
	b := reg.Counter("x_total", "op", "read")
	if a != b {
		t.Fatal("re-registering the same counter returned a new instance")
	}
	c := reg.Counter("x_total", "op", "write")
	if a == c {
		t.Fatal("different labels shared one counter")
	}
	a.Add(2)
	if v, ok := reg.CounterValue("x_total", "op", "read"); !ok || v != 2 {
		t.Fatalf("CounterValue = %d, %v; want 2, true", v, ok)
	}
	if _, ok := reg.CounterValue("x_total", "op", "missing"); ok {
		t.Fatal("CounterValue found an unregistered series")
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("y_total", "a", "1", "b", "2")
	b := reg.Counter("y_total", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order changed series identity; labels must canonicalize")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one family under two kinds did not panic")
		}
	}()
	reg.Gauge("z_total")
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	if g.Value() != 5 {
		t.Fatalf("Max(3) lowered the gauge to %d", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("Max(9) = %d", g.Value())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				g.Max(i * int64(w+1))
			}
		}(w)
	}
	wg.Wait()
	if g.Value() != 999*8 {
		t.Fatalf("concurrent Max = %d, want %d", g.Value(), 999*8)
	}
}

func TestGaugeFuncScrape(t *testing.T) {
	reg := NewRegistry()
	behind := 7
	reg.GaugeFunc("lag_records", func() float64 { return float64(behind) })
	if v, ok := reg.GaugeValue("lag_records"); !ok || v != 7 {
		t.Fatalf("GaugeValue = %g, %v; want 7, true", v, ok)
	}
	behind = 0
	if v, _ := reg.GaugeValue("lag_records"); v != 0 {
		t.Fatalf("GaugeValue after update = %g, want 0 (funcs must evaluate at scrape)", v)
	}
}

func TestNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total")
	reg.Gauge("a_gauge")
	reg.Counter("b_total", "k", "v") // same family, no new name
	got := reg.Names()
	want := []string{"b_total", "a_gauge"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names = %v, want %v (registration order)", got, want)
	}
}
