package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record("k", "event %d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []string{"event 3", "event 4", "event 5"} {
		if evs[i].Msg != want {
			t.Errorf("events[%d] = %q, want %q (oldest first)", i, evs[i].Msg, want)
		}
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Errorf("seqs = %d..%d, want 3..5 (lifetime numbering survives eviction)", evs[0].Seq, evs[2].Seq)
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("k", "dropped")
	if r.Events() != nil || r.Total() != 0 {
		t.Fatal("nil recorder is not a silent sink")
	}
	r.Dump(&strings.Builder{}) // must not panic
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(8)
	r.Record("failover", "endpoint %s rotated out", "10.0.0.1:9371")
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	for _, want := range []string{"flight recorder: 1 event(s)", "[failover]", "10.0.0.1:9371"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventsHandler(t *testing.T) {
	r := NewRecorder(4)
	r.Record("publish", "graph g epoch 3")
	srv := httptest.NewServer(EventsHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 1 || len(body.Events) != 1 || body.Events[0].Kind != "publish" {
		t.Fatalf("events payload = %+v", body)
	}
}
