// Package chaos is a deterministic fault-injecting TCP proxy
// (DESIGN.md §2.10): it sits between a replica client and a serving
// endpoint and drops, delays or truncates connections on a seeded
// schedule, or partitions the endpoint entirely. Determinism is the
// point — a fault schedule is a pure function of (seed, connection
// index), so a chaos run that finds a bug is a reproduction recipe,
// not an anecdote. The replication wire protocol frames every message
// with a CRC record, so every cut the proxy makes surfaces as a loud
// codec error on the victim, never a misparse.
package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind classifies what happens to one proxied connection.
type FaultKind int

const (
	// FaultNone forwards the connection untouched.
	FaultNone FaultKind = iota
	// FaultDrop closes both sides the moment the connection opens —
	// the classic refused/reset failure.
	FaultDrop
	// FaultDelay adds a fixed latency before every chunk forwarded to
	// the client — a slow or congested endpoint.
	FaultDelay
	// FaultTruncate cuts the server→client stream after a byte budget,
	// then closes — a mid-frame connection loss.
	FaultTruncate
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultTruncate:
		return "truncate"
	}
	return "unknown"
}

// Fault is the concrete fault one connection suffers.
type Fault struct {
	Kind FaultKind
	// Delay is the per-chunk forwarding latency (FaultDelay).
	Delay time.Duration
	// TruncateAfter is the server→client byte budget (FaultTruncate).
	TruncateAfter int
}

// Schedule maps a connection index to its fault, deterministically from
// the seed: connection i suffers the same fault in every run.
type Schedule struct {
	// Seed selects the pseudo-random schedule; 0 means 1.
	Seed uint64
	// DropPct, DelayPct, TruncatePct are per-connection percentages
	// (evaluated in that order out of 100); the remainder passes clean.
	DropPct, DelayPct, TruncatePct int
	// MaxDelay bounds injected latency (default 20ms).
	MaxDelay time.Duration
	// MaxTruncate bounds the truncation byte budget (default 256).
	MaxTruncate int
}

// FaultFor returns connection i's fault under the schedule.
func (s Schedule) FaultFor(i uint64) Fault {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	maxDelay := s.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 20 * time.Millisecond
	}
	maxTrunc := s.MaxTruncate
	if maxTrunc <= 0 {
		maxTrunc = 256
	}
	r := splitmix(seed ^ (i+1)*0x9E3779B97F4A7C15)
	roll := int(r % 100)
	param := splitmix(r)
	switch {
	case roll < s.DropPct:
		return Fault{Kind: FaultDrop}
	case roll < s.DropPct+s.DelayPct:
		return Fault{Kind: FaultDelay, Delay: time.Duration(param%uint64(maxDelay)) + time.Millisecond}
	case roll < s.DropPct+s.DelayPct+s.TruncatePct:
		return Fault{Kind: FaultTruncate, TruncateAfter: int(param % uint64(maxTrunc))}
	}
	return Fault{Kind: FaultNone}
}

func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Proxy is one fault-injecting hop in front of a TCP endpoint.
type Proxy struct {
	target string
	sched  Schedule

	ln      net.Listener
	connIdx atomic.Uint64
	part    atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards each accepted
// connection to target under the schedule's fault for its index.
func NewProxy(target string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, sched: sched, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the real endpoint.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns returns how many connections have been accepted so far.
func (p *Proxy) Conns() int { return int(p.connIdx.Load()) }

// SetPartitioned toggles a full partition: existing connections die and
// new ones are refused until the partition heals.
func (p *Proxy) SetPartitioned(v bool) {
	p.part.Store(v)
	if v {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

// Close stops the proxy and severs every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.connIdx.Add(1) - 1
		fault := p.sched.FaultFor(idx)
		if p.part.Load() || fault.Kind == FaultDrop {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serve(conn, fault)
	}
}

func (p *Proxy) serve(client net.Conn, fault Fault) {
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
		p.wg.Done()
	}()
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	defer upstream.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, upstream)
		p.mu.Unlock()
	}()

	// Client→server forwards clean; the fault hits the reply direction,
	// where truncation exercises the CRC framing hardest.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(upstream, client)
		upstream.Close()
		client.Close()
		done <- struct{}{}
	}()
	go func() {
		p.forward(client, upstream, fault)
		upstream.Close()
		client.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}

// forward copies upstream→client applying the fault.
func (p *Proxy) forward(client, upstream net.Conn, fault Fault) {
	buf := make([]byte, 4096)
	sent := 0
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if fault.Kind == FaultTruncate && sent+len(chunk) > fault.TruncateAfter {
				chunk = chunk[:fault.TruncateAfter-sent]
				if len(chunk) > 0 {
					client.Write(chunk)
				}
				return // cut mid-stream: the client sees a torn frame
			}
			if fault.Kind == FaultDelay {
				time.Sleep(fault.Delay)
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			sent += len(chunk)
		}
		if err != nil {
			return
		}
	}
}
