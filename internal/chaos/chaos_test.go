package chaos

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"mstadvice/internal/core"
	"mstadvice/internal/graph/gen"
	"mstadvice/internal/replica"
	"mstadvice/internal/service"
	"mstadvice/internal/store"
)

func TestScheduleIsDeterministic(t *testing.T) {
	s := Schedule{Seed: 99, DropPct: 20, DelayPct: 20, TruncatePct: 20}
	counts := map[FaultKind]int{}
	for i := uint64(0); i < 400; i++ {
		a, b := s.FaultFor(i), s.FaultFor(i)
		if a != b {
			t.Fatalf("conn %d: FaultFor not deterministic: %+v vs %+v", i, a, b)
		}
		counts[a.Kind]++
	}
	for _, k := range []FaultKind{FaultNone, FaultDrop, FaultDelay, FaultTruncate} {
		if counts[k] == 0 {
			t.Fatalf("schedule never produced %v over 400 connections: %v", k, counts)
		}
	}
	if got := (Schedule{Seed: 100, DropPct: 20, DelayPct: 20, TruncatePct: 20}).FaultFor(0); got == s.FaultFor(0) &&
		(Schedule{Seed: 100, DropPct: 20, DelayPct: 20, TruncatePct: 20}).FaultFor(1) == s.FaultFor(1) &&
		(Schedule{Seed: 100, DropPct: 20, DelayPct: 20, TruncatePct: 20}).FaultFor(2) == s.FaultFor(2) {
		t.Fatal("different seeds produced an identical schedule prefix")
	}
}

// echoServer answers each record frame with its payload echoed back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					payload, err := store.ReadRecord(br)
					if err != nil {
						return
					}
					if _, err := conn.Write(store.AppendRecord(nil, payload)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

func TestProxyForwardsCleanConnections(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := NewProxy(ln.Addr().String(), Schedule{}) // all-clean schedule
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i), 0xA5, byte(i * 3)}
		if _, err := conn.Write(store.AppendRecord(nil, msg)); err != nil {
			t.Fatal(err)
		}
		got, err := store.ReadRecord(br)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 || got[0] != byte(i) {
			t.Fatalf("round %d: echoed %x", i, got)
		}
	}
}

func TestProxyTruncationSurfacesAsTornRecord(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	// 100% truncation with a tiny budget: the reply is cut mid-frame.
	p, err := NewProxy(ln.Addr().String(), Schedule{Seed: 3, TruncatePct: 100, MaxTruncate: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := conn.Write(store.AppendRecord(nil, payload)); err != nil {
		t.Fatal(err)
	}
	_, err = store.ReadRecord(bufio.NewReader(conn))
	if err == nil {
		t.Fatal("truncated reply parsed as a full record")
	}
	if errors.Is(err, store.ErrTornRecord) {
		return // the loud failure the codec promises
	}
	var nerr net.Error
	if !errors.As(err, &nerr) && !errors.Is(err, net.ErrClosed) {
		// A cut at a frame boundary surfaces as EOF/closed instead.
		t.Logf("truncation surfaced as %v (acceptable: connection error)", err)
	}
}

func TestProxyPartition(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := NewProxy(ln.Addr().String(), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(store.AppendRecord(nil, []byte{1})); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if _, err := store.ReadRecord(br); err != nil {
		t.Fatal(err)
	}

	p.SetPartitioned(true)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// The live connection dies...
	if _, err := conn.Write(store.AppendRecord(nil, []byte{2})); err == nil {
		if _, err := store.ReadRecord(br); err == nil {
			t.Fatal("read through a partition succeeded")
		}
	}
	// ...and new ones refuse to carry traffic.
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c2.SetDeadline(time.Now().Add(5 * time.Second))
		c2.Write(store.AppendRecord(nil, []byte{3}))
		if _, err := store.ReadRecord(bufio.NewReader(c2)); err == nil {
			t.Fatal("read through a partition on a fresh connection succeeded")
		}
		c2.Close()
	}

	p.SetPartitioned(false)
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c3.Write(store.AppendRecord(nil, []byte{4})); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadRecord(bufio.NewReader(c3)); err != nil {
		t.Fatalf("healed partition still blocks: %v", err)
	}
}

// TestClientThroughChaosNeverWrong is the integration contract: a
// failover client reading through fault-injecting proxies — drops,
// delays, truncations — may retry, but every answer it returns must be
// byte-identical to the primary's and at a monotone epoch.
func TestClientThroughChaosNeverWrong(t *testing.T) {
	g := gen.RandomConnected(64, 192, rand.New(rand.NewSource(11)), gen.Options{Weights: gen.WeightsDistinct})
	adviceBits, err := core.BuildAdvice(g, 0, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New()
	if err := svc.Register("g", &store.Snapshot{Graph: g, Root: 0, Cap: core.DefaultCap, Advice: adviceBits}); err != nil {
		t.Fatal(err)
	}
	srvA := replica.NewServer(svc, nil, replica.ServerOptions{})
	srvB := replica.NewServer(svc, nil, replica.ServerOptions{})
	for _, s := range []*replica.Server{srvA, srvB} {
		if err := s.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
	}
	sched := Schedule{Seed: 12345, DropPct: 25, DelayPct: 15, TruncatePct: 25, MaxDelay: 2 * time.Millisecond}
	pA, err := NewProxy(srvA.Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer pA.Close()
	pB, err := NewProxy(srvB.Addr(), Schedule{Seed: 54321, DropPct: 25, DelayPct: 15, TruncatePct: 25, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Close()

	cli, err := replica.NewClient([]string{pA.Addr(), pB.Addr()}, replica.ClientOptions{
		Timeout:     time.Second,
		Attempts:    40, // the schedule can run several faulty connections back to back
		BackoffBase: time.Millisecond,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	answered := 0
	for u := 0; u < g.N(); u++ {
		ans, err := cli.Advice(context.Background(), "g", u)
		if err != nil {
			t.Fatalf("node %d through chaos: %v", u, err)
		}
		if ans.Epoch != 0 || !ans.Bits.Equal(adviceBits[u]) {
			t.Fatalf("node %d: WRONG ANSWER through chaos: %s@%d, want %s@0", u, ans.Bits, ans.Epoch, adviceBits[u])
		}
		answered++
	}
	if answered != g.N() {
		t.Fatalf("answered %d of %d", answered, g.N())
	}
	if pA.Conns()+pB.Conns() == 0 {
		t.Fatal("no traffic went through the proxies")
	}
}
