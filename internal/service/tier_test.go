package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"mstadvice/internal/advice"
	"mstadvice/internal/core"
	"mstadvice/internal/graph"
	"mstadvice/internal/hier"
	"mstadvice/internal/sim"
	"mstadvice/internal/store"
)

// makeTieredSnapshot builds a random instance whose snapshot carries
// coarse tiers at the given levels.
func makeTieredSnapshot(t testing.TB, n, m int, seed int64, levels []int) *store.Snapshot {
	t.Helper()
	snap := makeSnapshot(t, n, m, seed)
	tiers, err := hier.BuildTiers(snap.Graph, snap.Root, hier.HierOptions{Levels: levels, Cap: snap.Cap})
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) == 0 {
		t.Fatal("no tiers built")
	}
	snap.Tiers = tiers
	return snap
}

// TestTierServing pins the tier read path: level selection, the
// coarsest default, the standalone flat snapshot a client can decode
// and run the unmodified flat scheme on, and the error on flat entries.
func TestTierServing(t *testing.T) {
	svc := New()
	snap := makeTieredSnapshot(t, 200, 600, 9, []int{1, 2})
	if err := svc.Register("tg", snap); err != nil {
		t.Fatal(err)
	}

	info, err := svc.InfoFor("tg")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(info.TierLevels, []int{1, 2}) {
		t.Fatalf("TierLevels = %v, want [1 2]", info.TierLevels)
	}

	tier, seq, err := svc.Tier("tg", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Level != 2 || seq != 0 {
		t.Fatalf("Tier(2) = level %d at epoch %d, want 2 at 0", tier.Level, seq)
	}
	if coarsest, _, err := svc.Tier("tg", 0); err != nil || coarsest.Level != 2 {
		t.Fatalf("Tier(0) = level %d (%v), want the coarsest 2", coarsest.Level, err)
	}
	if _, _, err := svc.Tier("tg", 42); err == nil {
		t.Fatal("Tier(42) succeeded on a snapshot without that level")
	}

	reply, err := svc.TierSnapshot("tg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Level != 1 || reply.N != snap.Tiers[0].Graph.N() || len(reply.OrigEdges) != reply.M {
		t.Fatalf("tier reply header %+v inconsistent with tier 1", reply)
	}
	coarse, err := store.Decode(reply.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Version != 2 {
		t.Fatalf("tier snapshot version %d, want flat 2", coarse.Version)
	}
	runFlat(t, coarse.Graph, coarse)

	flat := New()
	if err := flat.Register("fg", makeSnapshot(t, 50, 120, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := flat.Tier("fg", 0); err == nil {
		t.Fatal("Tier on a flat snapshot succeeded")
	}
}

// TestTierUpdateRebuild pins copy-on-write across updates of a tiered
// entry: the previous epoch's tiers stay untouched for readers holding
// it, and the new epoch's tiers are rebuilt on the updated graph at the
// same levels.
func TestTierUpdateRebuild(t *testing.T) {
	svc := New()
	snap := makeTieredSnapshot(t, 150, 450, 11, []int{1, 2})
	if err := svc.Register("ug", snap); err != nil {
		t.Fatal(err)
	}
	before, err := svc.Epoch("ug")
	if err != nil {
		t.Fatal(err)
	}
	heldTiers := before.Tiers

	// Swap the two globally smallest weights: the MST changes, so the
	// rebuilt tiers must differ from the held ones.
	edges := before.Graph.Edges()
	lo, hi := 0, 1
	for e := range edges {
		if edges[e].W < edges[lo].W {
			lo = e
		}
	}
	if lo == hi {
		hi = 2
	}
	b := graph.Batch{Weights: []graph.WeightUpdate{
		{Edge: graph.EdgeID(lo), W: edges[hi].W*2 + 1},
	}}
	reply, err := svc.Update(context.Background(), "ug", b)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("update published epoch %d, want 1", reply.Epoch)
	}

	after, err := svc.Epoch("ug")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tierLevels(after.Tiers), []int{1, 2}) {
		t.Fatalf("rebuilt tier levels %v, want [1 2]", tierLevels(after.Tiers))
	}
	if !reflect.DeepEqual(before.Tiers, heldTiers) {
		t.Fatal("previous epoch's tiers changed under a held reader")
	}
	// Rebuilt tiers describe the new graph: the served coarse instance
	// still verifies under the flat scheme.
	rep, err := svc.TierSnapshot("ug", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 {
		t.Fatalf("tier served from epoch %d, want 1", rep.Epoch)
	}
	coarse, err := store.Decode(rep.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	runFlat(t, coarse.Graph, coarse)
}

// TestTierHTTP pins the daemon surface: GET /v1/graphs/{id}/tier.
func TestTierHTTP(t *testing.T) {
	svc := New()
	if err := svc.Register("hg", makeTieredSnapshot(t, 100, 300, 12, []int{1})); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc, false))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/graphs/hg/tier?level=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var reply TierReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Level != 1 || len(reply.Snapshot) == 0 {
		t.Fatalf("tier reply %+v", reply)
	}
	if _, err := store.Decode(reply.Snapshot); err != nil {
		t.Fatalf("served tier snapshot does not decode: %v", err)
	}

	if resp, err := srv.Client().Get(srv.URL + "/v1/graphs/hg/tier?level=9"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("missing level: status %d, want 404", resp.StatusCode)
		}
	}
}

// runFlat replays the flat Theorem 3 decoder on a decoded coarse
// instance and reports whether it reconstructs that instance's MST.
func runFlat(t *testing.T, g *graph.Graph, snap *store.Snapshot) {
	t.Helper()
	res, err := sim.NewNetwork(g).Run(core.Scheme{}.NewNode, snap.Advice, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, verr := advice.VerifyOutput(g, res.ParentPorts)
	if !ok {
		t.Fatalf("flat scheme on the served coarse instance: %v", verr)
	}
}
