package service

import (
	"strconv"
	"time"

	"mstadvice/internal/obs"
)

// Service metric set (DESIGN.md §2.11). Every Service owns one
// obs.Registry, created in New and served by the daemon's -debug-addr
// /metrics endpoint. All instances are pre-registered here so the
// serving paths never touch the registry lock: the hot read path costs
// exactly one atomic counter add (the same single atomic the
// pre-instrumentation Stats counter cost), and the write/decode paths
// add one histogram observation each — state transitions, not traffic.
type svcMetrics struct {
	reg *obs.Registry

	// queries counts every answered read (advice, advice-bits, tier
	// snapshot) — the hot-path counter behind Stats.Queries.
	queries *obs.Counter
	decodes *obs.Counter
	updates *obs.Counter

	// Per-op counters and log₂ latency histograms for the slow paths.
	ops map[string]opMetric

	// Per-shard gauges: registered entries and the highest epoch
	// sequence published through the shard — the at-a-glance view of
	// which shard is hot and how far each history has advanced.
	shardEntries  [numShards]*obs.Gauge
	shardEpochMax [numShards]*obs.Gauge
}

type opMetric struct {
	total   *obs.Counter
	latency *obs.Histogram
}

// opNames are the instrumented slow-path operations.
var opNames = []string{"register", "publish", "update", "decode", "verify"}

func newSvcMetrics() *svcMetrics {
	reg := obs.NewRegistry()
	m := &svcMetrics{
		reg:     reg,
		queries: reg.Counter("service_queries_total"),
		decodes: reg.Counter("service_decodes_total"),
		updates: reg.Counter("service_updates_total"),
		ops:     make(map[string]opMetric, len(opNames)),
	}
	for _, op := range opNames {
		m.ops[op] = opMetric{
			total:   reg.Counter("service_op_total", "op", op),
			latency: reg.Histogram("service_op_latency_ns", "op", op),
		}
	}
	for i := 0; i < numShards; i++ {
		shard := strconv.Itoa(i)
		m.shardEntries[i] = reg.Gauge("service_shard_entries", "shard", shard)
		m.shardEpochMax[i] = reg.Gauge("service_shard_epoch_max", "shard", shard)
	}
	return m
}

// op records one completed slow-path operation with its latency.
func (m *svcMetrics) op(name string, t0 time.Time) {
	om := m.ops[name]
	om.total.Inc()
	om.latency.ObserveSince(t0)
}

// Metrics returns the service's metric registry, for exposition (the
// daemon mounts it on /metrics) and for the cross-checking benches.
func (s *Service) Metrics() *obs.Registry { return s.met.reg }
