package service

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mstadvice/internal/bitstring"
	"mstadvice/internal/core"
	"mstadvice/internal/graph"
	"mstadvice/internal/graph/gen"
	"mstadvice/internal/problem"
	"mstadvice/internal/problem/topo"
	"mstadvice/internal/store"
)

// makeTopoSnapshot builds a topology-recognition instance with its
// canonical (flood, radius 0) oracle run.
func makeTopoSnapshot(t testing.TB, n int, seed int64) *store.Snapshot {
	t.Helper()
	g := gen.RandomConnected(n, 3*n, rand.New(rand.NewSource(seed)), gen.Options{Weights: gen.WeightsDistinct})
	adviceBits, err := topo.Problem{}.Encode(g, 0, problem.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &store.Snapshot{Problem: topo.Name, Graph: g, Root: 0, Advice: adviceBits}
}

// TestCrossProblemService registers one MST and one topology instance in
// the same service and checks per-problem behavior side by side: advice
// byte-identity against fresh oracle runs of the right problem, typed
// decode sessions, and problem attribution in Info.
func TestCrossProblemService(t *testing.T) {
	svc := New()
	mstSnap := makeSnapshot(t, 96, 288, 21)
	topoSnap := makeTopoSnapshot(t, 96, 22)
	if err := svc.Register("m", mstSnap); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("t", topoSnap); err != nil {
		t.Fatal(err)
	}
	// A bare topo snapshot (no advice) must run the topo oracle, not the
	// MST one.
	bare := gen.Grid(8, 8, rand.New(rand.NewSource(23)), gen.Options{})
	if err := svc.Register("t2", &store.Snapshot{Problem: topo.Name, Graph: bare, Root: 0}); err != nil {
		t.Fatal(err)
	}

	wantMST, err := core.BuildAdvice(mstSnap.Graph, 0, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}
	wantBare, err := topo.Problem{}.Encode(bare, 0, problem.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string][]string{
		"m":  bitsOf(wantMST),
		"t":  bitsOf(topoSnap.Advice),
		"t2": bitsOf(wantBare),
	} {
		for u, bits := range want {
			reply, err := svc.Advice(name, u)
			if err != nil {
				t.Fatal(err)
			}
			if reply.Bits != bits {
				t.Fatalf("%s node %d: served %q, oracle says %q", name, u, reply.Bits, bits)
			}
		}
	}

	mstSess, err := svc.DecodeSession(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if mstSess.Problem != "mst" || !mstSess.Verified || mstSess.Root != 0 || mstSess.MSTWeight == 0 {
		t.Fatalf("mst session: %+v", mstSess)
	}
	topoSess, err := svc.DecodeSession(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	wantClass := topo.Class(topoSnap.Graph)
	if topoSess.Problem != topo.Name || !topoSess.Verified || topoSess.Root != -1 || topoSess.Output == "" {
		t.Fatalf("topo session: %+v", topoSess)
	}
	want := (topo.Output{Class: wantClass, Shape: topo.Shape(topoSnap.Graph), Verified: true}).String()
	if topoSess.Output != want {
		t.Fatalf("topo session output %q, want %q", topoSess.Output, want)
	}
	for _, info := range svc.List() {
		want := map[string]string{"m": "mst", "t": topo.Name, "t2": topo.Name}[info.ID]
		if info.Problem != want {
			t.Fatalf("%s attributed to problem %q, want %q", info.ID, info.Problem, want)
		}
	}
}

// TestCrossProblemConcurrentReaders hammers both problems' graphs with
// readers while writers push updates to each; run under -race this pins
// the wait-free epoch discipline across problems sharing one service.
// Readers must never block, error, or observe advice that belongs to
// neither the pre- nor a post-update oracle run.
func TestCrossProblemConcurrentReaders(t *testing.T) {
	svc := New()
	mstSnap := makeSnapshot(t, 64, 192, 31)
	topoSnap := makeTopoSnapshot(t, 64, 32)
	if err := svc.Register("m", mstSnap); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("t", topoSnap); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(salt int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(salt)))
			for !stop.Load() {
				id := "m"
				if rng.Intn(2) == 0 {
					id = "t"
				}
				if _, err := svc.Advice(id, rng.Intn(64)); err != nil {
					t.Errorf("read of %s failed: %v", id, err)
					return
				}
				reads.Add(1)
			}
		}(i)
	}

	// Let the readers draw first blood so the update storm genuinely
	// overlaps them.
	for reads.Load() == 0 {
		runtime.Gosched()
	}

	// Writers: weight perturbations through both problems' update paths
	// (incremental advisor for mst, clone + re-encode for topo).
	for round := 0; round < 8; round++ {
		for _, id := range []string{"m", "t"} {
			if _, err := svc.Update(context.Background(), id, graph.Batch{
				Weights: []graph.WeightUpdate{{Edge: graph.EdgeID(round), W: graph.Weight(1_000_000 + round)}},
			}); err != nil {
				t.Fatalf("update of %s: %v", id, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads completed during the update storm")
	}

	// Post-storm byte-identity: served advice equals a fresh oracle run
	// of each problem on the service's current graph.
	for _, tc := range []struct {
		id   string
		want func(g *graph.Graph) []string
	}{
		{"m", func(g *graph.Graph) []string {
			adv, err := core.BuildAdvice(g, 0, core.DefaultCap)
			if err != nil {
				t.Fatal(err)
			}
			return bitsOf(adv)
		}},
		{"t", func(g *graph.Graph) []string {
			adv, err := topo.Problem{}.Encode(g, 0, problem.EncodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return bitsOf(adv)
		}},
	} {
		ep, err := svc.Epoch(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		want := tc.want(ep.Graph)
		for u, bits := range want {
			reply, err := svc.Advice(tc.id, u)
			if err != nil {
				t.Fatal(err)
			}
			if reply.Bits != bits {
				t.Fatalf("%s node %d after updates: served %q, oracle says %q", tc.id, u, reply.Bits, bits)
			}
		}
		sess, err := svc.DecodeSession(context.Background(), tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if !sess.Verified {
			t.Fatalf("%s not verified after updates: %+v", tc.id, sess)
		}
	}
}

// TestHTTPCrossProblem serves both problems through one HTTP handler —
// the mstadviced daemon's surface — registering a generated topo
// instance by problem name next to a stored MST snapshot.
func TestHTTPCrossProblem(t *testing.T) {
	svc := New()
	srv := httptest.NewServer(NewHandler(svc, false))
	defer srv.Close()

	var info Info
	code := doJSON(t, srv, "POST", "/v1/graphs", map[string]any{
		"id": "m", "family": "random", "n": 48, "seed": 5}, &info)
	if code != http.StatusCreated || info.Problem != "mst" {
		t.Fatalf("mst register = %d, %+v", code, info)
	}
	code = doJSON(t, srv, "POST", "/v1/graphs", map[string]any{
		"id": "t", "family": "ring", "n": 48, "seed": 5, "problem": topo.Name}, &info)
	if code != http.StatusCreated || info.Problem != topo.Name {
		t.Fatalf("topo register = %d, %+v", code, info)
	}
	code = doJSON(t, srv, "POST", "/v1/graphs", map[string]any{
		"id": "x", "family": "ring", "n": 8, "seed": 5, "problem": "nope"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("register with unknown problem = %d, want 400", code)
	}

	var mstSess, topoSess Session
	if code := doJSON(t, srv, "GET", "/v1/graphs/m/decode", nil, &mstSess); code != http.StatusOK {
		t.Fatalf("mst decode = %d", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/graphs/t/decode", nil, &topoSess); code != http.StatusOK {
		t.Fatalf("topo decode = %d", code)
	}
	if mstSess.Problem != "mst" || !mstSess.Verified || mstSess.Root != 0 {
		t.Fatalf("mst session: %+v", mstSess)
	}
	if topoSess.Problem != topo.Name || !topoSess.Verified || topoSess.Root != -1 {
		t.Fatalf("topo session: %+v", topoSess)
	}
}

// bitsOf renders per-node advice as comparable strings.
func bitsOf(adv []*bitstring.BitString) []string {
	out := make([]string, len(adv))
	for u, a := range adv {
		out[u] = a.String()
	}
	return out
}
