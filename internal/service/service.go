// Package service is the advice-serving layer: an in-memory, sharded
// registry of stored oracle runs (internal/store snapshots) that answers
// concurrent per-node advice queries, reconstructs and verifies full
// rooted MSTs from the stored advice, and absorbs batched dynamic
// updates — the paper's oracle turned into a long-lived server, which is
// exactly the model's interaction pattern: each node asks the oracle for
// its few bits and computes the MST locally.
//
// # Concurrency model
//
// Two independent mechanisms keep the read path wait-free against
// writers (DESIGN.md §2.6):
//
//   - the registry is split into shards (graph ID → FNV-1a hash →
//     shard); each shard guards its id → entry map with an RWMutex that
//     is write-locked only on Register/Drop, so lookups from any number
//     of goroutines proceed in parallel and never contend with queries
//     on other shards;
//   - each entry publishes its state through an atomic pointer to an
//     immutable Epoch (graph snapshot + advice assignment + sequence
//     number). Readers load the pointer once and work on a frozen,
//     never-mutated epoch; writers prepare the next epoch on the side —
//     clone the advisor's live graph, copy the advice slice — and
//     publish it with one atomic swap (copy-on-write). A reader
//     observing epoch k keeps a fully consistent (graph, advice) pair
//     even while epoch k+1 is being built, and never blocks, because no
//     lock sits anywhere on its path.
//
// Writers serialize per entry (entry.mu); updates to different graphs
// run concurrently.
//
// The dynamic.Advisor an entry needs for updates is built lazily on the
// first Update: registering a stored snapshot costs O(file) — the whole
// point of the store — and read-only entries never pay the advisor's
// initial oracle + sensitivity run.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mstadvice/internal/advice"
	"mstadvice/internal/bitstring"
	"mstadvice/internal/core"
	"mstadvice/internal/dynamic"
	"mstadvice/internal/graph"
	"mstadvice/internal/hier"
	"mstadvice/internal/problem"
	"mstadvice/internal/problem/mstp"
	_ "mstadvice/internal/problem/topo" // register the topo problem for serving
	"mstadvice/internal/sim"
	"mstadvice/internal/store"
)

// numShards is the registry fan-out. 16 shards keep shard-lock
// contention negligible up to hundreds of concurrent clients while the
// per-shard maps stay small enough to stay cache-resident.
const numShards = 16

// Epoch is one immutable published state of a graph: readers hold it
// freely, nothing in it is ever mutated after publication.
type Epoch struct {
	// Seq increments with every published update, starting at 0 for the
	// registered snapshot. Replies carry it so clients can correlate
	// answers across an update.
	Seq uint64
	// Problem is the advice problem this epoch's advice encodes
	// (DESIGN.md §2.8); it never changes across updates of an entry.
	Problem string
	// Cap is the problem's scalar oracle parameter the advice was built
	// with (store.Snapshot.Cap); constant across an entry's epochs. The
	// replication layer needs it to encode an epoch back into a snapshot
	// that rebuilds the same oracle (DESIGN.md §2.10).
	Cap int
	// Graph is a private snapshot; no advisor will ever patch it.
	Graph *graph.Graph
	// Root is the designated root (the MST root for mst, the flood
	// origin for topo).
	Root graph.NodeID
	// Advice is the per-node assignment, byte-identical to a fresh oracle
	// run on Graph.
	Advice []*bitstring.BitString
	// Tiers are the optional coarse instances of a tiered snapshot
	// (store version 3, built by hier.BuildTiers), ascending by level;
	// nil when the snapshot is flat. Like everything else in an epoch
	// they are immutable once published: updates rebuild the tiers on
	// the next epoch's graph rather than patching these.
	Tiers []store.Tier

	// decodeMu guards the lazily computed session cache: the full
	// local-MST reconstruction is deterministic per epoch, so it runs at
	// most once per epoch no matter how many clients ask, and a canceled
	// run leaves the cache empty for the next caller instead of
	// poisoning it. Advice readers never touch this lock.
	decodeMu sync.Mutex
	session  *Session
}

// Session is the result of replaying the problem's canonical distributed
// decoder against an epoch's stored advice — the full rooted MST for
// mst, the per-node class tags for topo — without re-running the oracle.
type Session struct {
	Seq     uint64 `json:"epoch"`
	Problem string `json:"problem"`
	// Root is the node that claimed the MST root, or -1 on problems
	// without one.
	Root graph.NodeID `json:"root"`
	// ParentPorts is the raw per-node decoder output: parent ports for
	// mst, class tags for topo (the historical field name is part of the
	// wire format).
	ParentPorts []int        `json:"parent_ports"`
	Rounds      int          `json:"rounds"`
	Verified    bool         `json:"verified"`
	VerifyErr   string       `json:"verify_error,omitempty"`
	MSTWeight   graph.Weight `json:"mst_weight"`
	// Output is the problem's one-line typed measurement.
	Output string `json:"output,omitempty"`
}

// AdviceReply answers one per-node advice query.
type AdviceReply struct {
	Node  int    `json:"node"`
	Bits  string `json:"bits"` // 0/1 string, LSB of the paper's layout first
	Len   int    `json:"len"`
	Epoch uint64 `json:"epoch"`
}

// Info summarises one registered graph.
type Info struct {
	ID        string  `json:"id"`
	Problem   string  `json:"problem"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Root      int     `json:"root"`
	Epoch     uint64  `json:"epoch"`
	MaxBits   int     `json:"advice_max_bits"`
	AvgBits   float64 `json:"advice_avg_bits"`
	TotalBits int     `json:"advice_total_bits"`
	// TierLevels lists the levels of the epoch's tiered coarse
	// instances, ascending; absent on flat snapshots.
	TierLevels []int `json:"tier_levels,omitempty"`
}

// UpdateReply reports how a batch was absorbed.
type UpdateReply struct {
	Epoch       uint64 `json:"epoch"`
	Incremental bool   `json:"incremental"`
	Reencoded   int    `json:"nodes_reencoded"`
}

// Stats counts the service's lifetime work (atomic, read via Snapshot).
type Stats struct {
	Queries    uint64 `json:"queries"`
	Decodes    uint64 `json:"decodes"`
	Updates    uint64 `json:"updates"`
	Registered uint64 `json:"registered"`
}

type entry struct {
	id   string
	cap  int
	prob problem.Problem
	cur  atomic.Pointer[Epoch]

	// mu serializes writers; readers never take it.
	mu  sync.Mutex
	adv *dynamic.Advisor // lazily built on first Update, guarded by mu
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// Service is the sharded advice server. The zero value is not usable;
// call New.
type Service struct {
	shards [numShards]shard

	// met is the service's metric set (DESIGN.md §2.11); the lifetime
	// Stats counters are views over it.
	met *svcMetrics

	// hookMu guards hooks; reads on the publish path take it shared.
	hookMu sync.RWMutex
	hooks  []func(id string, ep *Epoch)
}

// ErrNotFound marks lookups of graphs or tiers that are not registered;
// the HTTP layer maps it to 404 and the replication client to its
// not-found wire code. Test with errors.Is (or IsNotFound).
var ErrNotFound = errors.New("not found")

// IsNotFound reports whether err is a missing-graph or missing-tier
// lookup failure.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// OnPublish registers fn to run synchronously with every epoch
// publication of every graph: the registered snapshot's epoch 0 and each
// epoch an update (or an external Publish) installs. Calls for one graph
// are ordered by epoch — the hook runs under the entry's writer lock —
// so a subscriber sees a consistent prefix of the epoch history; hooks
// must not call back into the publishing entry. Register hooks before
// serving traffic: the list is append-only and never removed from.
func (s *Service) OnPublish(fn func(id string, ep *Epoch)) {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	s.hooks = append(s.hooks, fn)
}

func (s *Service) firePublish(id string, ep *Epoch) {
	s.met.shardEpochMax[shardIndex(id)].Max(int64(ep.Seq))
	s.hookMu.RLock()
	hooks := s.hooks
	s.hookMu.RUnlock()
	for _, fn := range hooks {
		fn(id, ep)
	}
}

// New returns an empty service.
func New() *Service {
	s := &Service{met: newSvcMetrics()}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

func shardIndex(id string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32() % numShards
}

func (s *Service) shardFor(id string) *shard {
	return &s.shards[shardIndex(id)]
}

// Register publishes a snapshot under the given ID. Snapshots without a
// stored advice assignment get one computed here (one oracle run);
// snapshots with advice are served as stored, in O(size) — this is the
// "load a precomputed run without re-running Borůvka" path. The snapshot
// must not be mutated by the caller afterwards: the service takes
// ownership.
func (s *Service) Register(id string, snap *store.Snapshot) error {
	t0 := time.Now()
	if id == "" {
		return fmt.Errorf("service: empty graph ID")
	}
	if snap == nil || snap.Graph == nil {
		return fmt.Errorf("service: nil snapshot for %q", id)
	}
	if snap.Graph.N() == 0 {
		return fmt.Errorf("service: empty graph for %q", id)
	}
	probName := snap.Problem
	if probName == "" {
		probName = mstp.Name
	}
	prob, err := problem.ByName(probName)
	if err != nil {
		return fmt.Errorf("service: registering %q: %w", id, err)
	}
	capBits := snap.Cap
	if capBits <= 0 && probName == mstp.Name {
		capBits = core.DefaultCap // the paper's c+1 budget; other problems define their own zero
	}
	adviceBits := snap.Advice
	if adviceBits == nil {
		adviceBits, err = prob.Encode(snap.Graph, snap.Root, problem.EncodeOptions{Param: capBits})
		if err != nil {
			return fmt.Errorf("service: building advice for %q: %w", id, err)
		}
	}
	if len(adviceBits) != snap.Graph.N() {
		return fmt.Errorf("service: %q has %d advice strings for %d nodes", id, len(adviceBits), snap.Graph.N())
	}
	e := &entry{id: id, cap: capBits, prob: prob}
	first := &Epoch{Problem: probName, Cap: capBits, Graph: snap.Graph, Root: snap.Root, Advice: adviceBits, Tiers: snap.Tiers}
	e.cur.Store(first)
	// The entry's writer lock is held across insertion and the publish
	// hook so an update racing the registration cannot fire its hook
	// before epoch 0's — subscribers see epochs in order.
	e.mu.Lock()
	defer e.mu.Unlock()
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.entries[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("service: graph %q already registered", id)
	}
	sh.entries[id] = e
	sh.mu.Unlock()
	s.met.shardEntries[shardIndex(id)].Add(1)
	s.firePublish(id, first)
	s.met.op("register", t0)
	return nil
}

// Publish installs an externally produced epoch — the replication
// follower's apply path (DESIGN.md §2.10): a replica tails the primary's
// epoch log and publishes each record through the same copy-on-write
// swap local updates use, so its readers are wait-free and see a
// consistent prefix of the primary's history. The snapshot must carry
// its advice (a follower never re-runs the oracle — that could diverge)
// and seq must extend the entry's history by exactly one; the first
// publication of a graph accepts any seq (a log compacted or joined
// mid-history still replays in order from its own first record).
func (s *Service) Publish(id string, snap *store.Snapshot, seq uint64) error {
	t0 := time.Now()
	if snap == nil || snap.Graph == nil || snap.Graph.N() == 0 {
		return fmt.Errorf("service: empty snapshot published for %q", id)
	}
	if snap.Advice == nil {
		return fmt.Errorf("service: snapshot published for %q carries no advice", id)
	}
	if len(snap.Advice) != snap.Graph.N() {
		return fmt.Errorf("service: %q has %d advice strings for %d nodes", id, len(snap.Advice), snap.Graph.N())
	}
	probName := snap.Problem
	if probName == "" {
		probName = mstp.Name
	}
	prob, err := problem.ByName(probName)
	if err != nil {
		return fmt.Errorf("service: publishing %q: %w", id, err)
	}
	ep := &Epoch{
		Seq: seq, Problem: probName, Cap: snap.Cap,
		Graph: snap.Graph, Root: snap.Root, Advice: snap.Advice, Tiers: snap.Tiers,
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := sh.entries[id]
	if e == nil {
		e = &entry{id: id, cap: snap.Cap, prob: prob}
		e.cur.Store(ep)
		e.mu.Lock()
		defer e.mu.Unlock()
		sh.entries[id] = e
		sh.mu.Unlock()
		s.met.shardEntries[shardIndex(id)].Add(1)
		s.firePublish(id, ep)
		s.met.op("publish", t0)
		return nil
	}
	sh.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	prev := e.cur.Load()
	if prev.Problem != probName {
		return fmt.Errorf("service: %q is registered for problem %q, publication says %q", id, prev.Problem, probName)
	}
	if seq != prev.Seq+1 {
		return fmt.Errorf("service: %q is at epoch %d, publication of %d breaks the consistent prefix", id, prev.Seq, seq)
	}
	// An externally published epoch invalidates a locally built advisor:
	// its live graph no longer matches the entry's history.
	e.adv = nil
	e.cur.Store(ep)
	s.met.updates.Inc()
	s.firePublish(id, ep)
	s.met.op("publish", t0)
	return nil
}

// Drop removes a graph. In-flight readers holding its epoch finish
// normally (the epoch is immutable and unreferenced afterwards).
func (s *Service) Drop(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; !ok {
		return false
	}
	delete(sh.entries, id)
	s.met.shardEntries[shardIndex(id)].Add(-1)
	return true
}

func (s *Service) lookup(id string) (*entry, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e := sh.entries[id]
	sh.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("service: unknown graph %q: %w", id, ErrNotFound)
	}
	return e, nil
}

// Epoch returns the current published epoch of a graph. Bulk readers can
// hold it and index Advice directly; it will never change under them.
func (s *Service) Epoch(id string) (*Epoch, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return e.cur.Load(), nil
}

// Advice answers one per-node query from the current epoch. This is the
// hot path: one shard RLock for the map lookup, one atomic pointer load,
// one slice index — no allocation beyond the reply.
func (s *Service) Advice(id string, node int) (AdviceReply, error) {
	e, err := s.lookup(id)
	if err != nil {
		return AdviceReply{}, err
	}
	ep := e.cur.Load()
	if node < 0 || node >= len(ep.Advice) {
		return AdviceReply{}, fmt.Errorf("service: node %d out of range [0,%d) in graph %q", node, len(ep.Advice), id)
	}
	s.met.queries.Inc()
	a := ep.Advice[node]
	return AdviceReply{Node: node, Bits: a.String(), Len: a.Len(), Epoch: ep.Seq}, nil
}

// AdviceBits is Advice without reply marshalling, for in-process callers
// (the load generator): it returns the raw bit string and the epoch.
func (s *Service) AdviceBits(id string, node int) (*bitstring.BitString, uint64, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	ep := e.cur.Load()
	if node < 0 || node >= len(ep.Advice) {
		return nil, 0, fmt.Errorf("service: node %d out of range [0,%d) in graph %q", node, len(ep.Advice), id)
	}
	s.met.queries.Inc()
	return ep.Advice[node], ep.Seq, nil
}

// TierReply answers one tier query: the coarse instance of the
// requested level, shipped as a standalone flat (version 2) store
// snapshot the client decodes and runs the unmodified flat scheme on,
// plus the original-edge hints that ground every coarse edge back in
// the served graph.
type TierReply struct {
	Level int    `json:"level"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Root  int    `json:"root"`
	Epoch uint64 `json:"epoch"`
	// OrigEdges[e] is the edge of the full graph realizing coarse edge e.
	OrigEdges []int `json:"orig_edges"`
	// Snapshot is the encoded flat snapshot of the coarse instance
	// (base64 in JSON).
	Snapshot []byte `json:"snapshot"`
}

// Tier returns the tier of the requested level from the current epoch,
// read-only, together with the epoch sequence. level ≤ 0 selects the
// coarsest available tier. The read path is the same wait-free one as
// Advice: shard RLock, one atomic epoch load, no copying.
func (s *Service) Tier(id string, level int) (*store.Tier, uint64, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	ep := e.cur.Load()
	tier, err := tierOf(ep, id, level)
	if err != nil {
		return nil, 0, err
	}
	return tier, ep.Seq, nil
}

// tierOf selects a tier within one frozen epoch, so callers pairing the
// tier with other epoch state never straddle an update.
func tierOf(ep *Epoch, id string, level int) (*store.Tier, error) {
	if len(ep.Tiers) == 0 {
		return nil, fmt.Errorf("service: graph %q has no tiers: %w", id, ErrNotFound)
	}
	if level <= 0 {
		return &ep.Tiers[len(ep.Tiers)-1], nil
	}
	for i := range ep.Tiers {
		if ep.Tiers[i].Level == level {
			return &ep.Tiers[i], nil
		}
	}
	return nil, fmt.Errorf("service: graph %q has no tier at level %d (available: %v): %w", id, level, tierLevels(ep.Tiers), ErrNotFound)
}

// TierSnapshot serves the requested tier as an encoded standalone flat
// snapshot of the coarse instance — the bytes a budget-constrained
// client stores instead of the full flat snapshot, paying the
// hierarchical decoder's extra rounds at query time.
func (s *Service) TierSnapshot(id string, level int) (TierReply, error) {
	e, err := s.lookup(id)
	if err != nil {
		return TierReply{}, err
	}
	ep := e.cur.Load()
	tier, err := tierOf(ep, id, level)
	if err != nil {
		return TierReply{}, err
	}
	blob, err := store.Encode(&store.Snapshot{
		Problem: ep.Problem,
		Graph:   tier.Graph,
		Root:    tier.Root,
		Cap:     e.cap,
		Advice:  tier.Advice,
		Version: 2,
	})
	if err != nil {
		return TierReply{}, fmt.Errorf("service: encoding tier %d of %q: %w", tier.Level, id, err)
	}
	orig := make([]int, len(tier.OrigEdge))
	for i, oe := range tier.OrigEdge {
		orig[i] = int(oe)
	}
	s.met.queries.Inc()
	return TierReply{
		Level: tier.Level, N: tier.Graph.N(), M: tier.Graph.M(), Root: int(tier.Root),
		Epoch: ep.Seq, OrigEdges: orig, Snapshot: blob,
	}, nil
}

func tierLevels(tiers []store.Tier) []int {
	ls := make([]int, len(tiers))
	for i := range tiers {
		ls[i] = tiers[i].Level
	}
	return ls
}

// DecodeSession replays the distributed Theorem 3 decoder against the
// epoch's stored advice — not a fresh oracle run — and returns the full
// rooted MST with its verification verdict. The result is computed once
// per epoch and cached; concurrent callers share the one run. ctx
// cancels a run in progress at round granularity.
func (s *Service) DecodeSession(ctx context.Context, id string) (*Session, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	ep := e.cur.Load()
	ep.decodeMu.Lock()
	defer ep.decodeMu.Unlock()
	if ep.session == nil {
		t0 := time.Now()
		sess, err := decodeEpoch(ctx, e.prob, ep)
		if err != nil {
			return nil, err
		}
		ep.session = sess
		s.met.decodes.Inc()
		s.met.op("decode", t0)
	}
	return ep.session, nil
}

// decodeEpoch runs the problem's canonical decoder on the stored advice
// and judges the output with the problem's verifier.
func decodeEpoch(ctx context.Context, prob problem.Problem, ep *Epoch) (*Session, error) {
	nw := sim.NewNetwork(ep.Graph)
	scheme := prob.Scheme()
	res, err := nw.Run(scheme.NewNode, ep.Advice, sim.Options{Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("service: decoding epoch %d: %w", ep.Seq, err)
	}
	sess := &Session{
		Seq:         ep.Seq,
		Problem:     prob.Name(),
		Root:        -1,
		ParentPorts: res.ParentPorts,
		Rounds:      res.Rounds,
	}
	out := prob.VerifyOutput(ep.Graph, ep.Root, res.ParentPorts)
	sess.Verified = out.OK()
	sess.Output = out.String()
	if verr := out.Err(); verr != nil {
		sess.VerifyErr = verr.Error()
	}
	if mo, ok := out.(mstp.Output); ok {
		sess.Root = mo.Root
		sess.MSTWeight = mo.Weight
	}
	return sess, nil
}

// Verify decodes the current epoch (cached) and reports whether the
// stored advice reconstructs the exact rooted MST.
func (s *Service) Verify(ctx context.Context, id string) (bool, error) {
	t0 := time.Now()
	sess, err := s.DecodeSession(ctx, id)
	if err != nil {
		return false, err
	}
	s.met.op("verify", t0)
	return sess.Verified, nil
}

// Update applies one batch of weight changes and deletions and publishes
// the next epoch. Readers keep answering from the previous epoch until
// the single atomic swap; they never wait. Writers to the same graph
// serialize; the first update pays the advisor construction (one oracle
// + sensitivity run seeded from the current epoch).
func (s *Service) Update(ctx context.Context, id string, b graph.Batch) (*UpdateReply, error) {
	t0 := time.Now()
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prob.Name() != mstp.Name {
		// Generic path for problems without an incremental advisor: apply
		// the batch to a private clone, re-run the problem's oracle, and
		// publish — same epoch discipline, full re-encode.
		prev := e.cur.Load()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("service: update of %q canceled: %w", id, err)
		}
		g := prev.Graph.Clone()
		if err := g.ApplyBatch(b); err != nil {
			return nil, fmt.Errorf("service: update of %q: %w", id, err)
		}
		adviceBits, err := e.prob.Encode(g, prev.Root, problem.EncodeOptions{Param: e.cap})
		if err != nil {
			return nil, fmt.Errorf("service: re-encoding %q: %w", id, err)
		}
		// Tiers are an MST construct (hier.BuildTiers); a non-mst entry
		// cannot carry meaningful ones, so none are rebuilt here.
		next := &Epoch{Seq: prev.Seq + 1, Problem: prev.Problem, Cap: prev.Cap, Root: prev.Root, Graph: g, Advice: adviceBits}
		e.cur.Store(next)
		s.met.updates.Inc()
		s.firePublish(id, next)
		s.met.op("update", t0)
		return &UpdateReply{Epoch: next.Seq, Incremental: false, Reencoded: g.N()}, nil
	}
	if e.adv == nil {
		ep := e.cur.Load()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("service: update of %q canceled: %w", id, err)
		}
		adv, err := dynamic.NewAdvisor(ep.Graph.Clone(), ep.Root, e.cap)
		if err != nil {
			return nil, fmt.Errorf("service: building advisor for %q: %w", id, err)
		}
		e.adv = adv
	}
	res, err := e.adv.UpdateCtx(ctx, b)
	if err != nil {
		return nil, fmt.Errorf("service: update of %q: %w", id, err)
	}
	prev := e.cur.Load()
	next := &Epoch{
		Seq:     prev.Seq + 1,
		Problem: prev.Problem,
		Cap:     prev.Cap,
		Root:    e.adv.Root(),
		// The advisor owns its live graph and patches it in place on the
		// next update; published epochs need a frozen copy.
		Graph: e.adv.Graph().Clone(),
		// Advice strings are immutable once published (the advisor
		// replaces, never mutates, per-node strings), so copying the
		// slice of pointers is enough.
		Advice: append([]*bitstring.BitString(nil), e.adv.Advice()...),
	}
	if len(prev.Tiers) > 0 {
		// The incremental advisor maintains the flat advice, not the
		// contraction tower, so a tiered entry pays one decomposition per
		// update to rebuild its tiers at the same levels on the new graph.
		// Readers keep serving the previous epoch's tiers meanwhile.
		tiers, err := hier.BuildTiers(next.Graph, next.Root, hier.HierOptions{
			Levels: tierLevels(prev.Tiers),
			Cap:    e.cap,
		})
		if err != nil {
			return nil, fmt.Errorf("service: rebuilding tiers for %q: %w", id, err)
		}
		next.Tiers = tiers
	}
	e.cur.Store(next)
	s.met.updates.Inc()
	s.firePublish(id, next)
	s.met.op("update", t0)
	reply := &UpdateReply{Epoch: next.Seq, Incremental: res.Incremental, Reencoded: len(res.Changed)}
	return reply, nil
}

// InfoFor summarises one graph's current epoch.
func (s *Service) InfoFor(id string) (Info, error) {
	e, err := s.lookup(id)
	if err != nil {
		return Info{}, err
	}
	return infoOf(id, e.cur.Load()), nil
}

func infoOf(id string, ep *Epoch) Info {
	st := advice.Measure(ep.Advice, ep.Graph.N())
	info := Info{
		ID: id, Problem: ep.Problem, N: ep.Graph.N(), M: ep.Graph.M(), Root: int(ep.Root), Epoch: ep.Seq,
		MaxBits: st.MaxBits, AvgBits: st.AvgBits, TotalBits: st.TotalBits,
	}
	if len(ep.Tiers) > 0 {
		info.TierLevels = tierLevels(ep.Tiers)
	}
	return info
}

// List returns every registered graph's summary, sorted by ID.
func (s *Service) List() []Info {
	var out []Info
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, e := range sh.entries {
			out = append(out, infoOf(id, e.cur.Load()))
		}
		sh.mu.RUnlock()
	}
	slices.SortFunc(out, func(a, b Info) int { return strings.Compare(a.ID, b.ID) })
	return out
}

// StatsNow returns the lifetime counters.
func (s *Service) StatsNow() Stats {
	var registered uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		registered += uint64(len(sh.entries))
		sh.mu.RUnlock()
	}
	return Stats{
		Queries:    s.met.queries.Value(),
		Decodes:    s.met.decodes.Value(),
		Updates:    s.met.updates.Value(),
		Registered: registered,
	}
}
