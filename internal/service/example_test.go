package service_test

import (
	"context"
	"fmt"

	"mstadvice/internal/core"
	"mstadvice/internal/graph"
	"mstadvice/internal/service"
	"mstadvice/internal/store"
)

// ExampleService registers an oracle run and serves per-node advice
// queries from it — the read path is wait-free (one shard RLock + one
// atomic epoch load per query).
func ExampleService() {
	g, err := graph.NewBuilder(4).
		AddEdge(0, 1, 1).
		AddEdge(1, 2, 2).
		AddEdge(2, 3, 3).
		AddEdge(3, 0, 4).
		Build()
	if err != nil {
		panic(err)
	}
	advice, err := core.BuildAdvice(g, 0, core.DefaultCap)
	if err != nil {
		panic(err)
	}

	svc := service.New()
	if err := svc.Register("demo", &store.Snapshot{Graph: g, Root: 0, Cap: core.DefaultCap, Advice: advice}); err != nil {
		panic(err)
	}

	reply, err := svc.Advice("demo", 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("node:", reply.Node)
	fmt.Println("bits served:", reply.Len == advice[2].Len())
	fmt.Println("epoch:", reply.Epoch)

	// DecodeSession replays the distributed Theorem 3 decoder against
	// the stored advice and verifies the rooted MST it reconstructs.
	sess, err := svc.DecodeSession(context.Background(), "demo")
	if err != nil {
		panic(err)
	}
	fmt.Println("decoded root:", sess.Root)
	fmt.Println("verified:", sess.Verified)
	// Output:
	// node: 2
	// bits served: true
	// epoch: 0
	// decoded root: 0
	// verified: true
}
