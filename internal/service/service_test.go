package service

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mstadvice/internal/bitstring"
	"mstadvice/internal/core"
	"mstadvice/internal/graph"
	"mstadvice/internal/graph/gen"
	"mstadvice/internal/mst"
	"mstadvice/internal/store"
)

// makeSnapshot builds a random connected instance with its oracle run.
func makeSnapshot(t testing.TB, n, m int, seed int64) *store.Snapshot {
	t.Helper()
	g := gen.RandomConnected(n, m, rand.New(rand.NewSource(seed)), gen.Options{Weights: gen.WeightsDistinct})
	adviceBits, err := core.BuildAdvice(g, 0, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}
	return &store.Snapshot{Graph: g, Root: 0, Cap: core.DefaultCap, Advice: adviceBits}
}

func TestRegisterQueryDecodeVerify(t *testing.T) {
	svc := New()
	snap := makeSnapshot(t, 128, 384, 1)
	if err := svc.Register("g1", snap); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("g1", snap); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if _, err := svc.Advice("nope", 0); err == nil {
		t.Fatal("query of unknown graph succeeded")
	}
	if _, err := svc.Advice("g1", 10_000); err == nil {
		t.Fatal("query of out-of-range node succeeded")
	}
	for u := 0; u < snap.Graph.N(); u++ {
		reply, err := svc.Advice("g1", u)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Epoch != 0 || reply.Bits != snap.Advice[u].String() {
			t.Fatalf("node %d: reply %+v does not match the stored advice %s", u, reply, snap.Advice[u])
		}
	}
	sess, err := svc.DecodeSession(context.Background(), "g1")
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Verified || sess.Root != 0 {
		t.Fatalf("decode session not verified: %+v", sess)
	}
	ref, err := mst.Kruskal(snap.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.Graph.TotalWeight(ref); sess.MSTWeight != want {
		t.Fatalf("decoded MST weight %d, reference %d", sess.MSTWeight, want)
	}
	// The session is cached per epoch: a second call must not re-decode.
	before := svc.StatsNow().Decodes
	if _, err := svc.DecodeSession(context.Background(), "g1"); err != nil {
		t.Fatal(err)
	}
	if got := svc.StatsNow().Decodes; got != before {
		t.Fatalf("second DecodeSession re-decoded: %d -> %d", before, got)
	}
	ok, err := svc.Verify(context.Background(), "g1")
	if err != nil || !ok {
		t.Fatalf("Verify = (%v, %v), want (true, nil)", ok, err)
	}
	if !svc.Drop("g1") {
		t.Fatal("Drop of a registered graph failed")
	}
	if svc.Drop("g1") {
		t.Fatal("Drop of a dropped graph succeeded")
	}
}

func TestRegisterWithoutAdviceRunsOracle(t *testing.T) {
	svc := New()
	g := gen.Grid(6, 6, rand.New(rand.NewSource(2)), gen.Options{})
	if err := svc.Register("bare", &store.Snapshot{Graph: g, Root: 3}); err != nil {
		t.Fatal(err)
	}
	want, err := core.BuildAdvice(g, 3, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		reply, err := svc.Advice("bare", u)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Bits != want[u].String() {
			t.Fatalf("node %d: served %q, oracle says %q", u, reply.Bits, want[u])
		}
	}
}

func TestUpdatePublishesNewEpoch(t *testing.T) {
	svc := New()
	snap := makeSnapshot(t, 96, 288, 3)
	if err := svc.Register("g", snap); err != nil {
		t.Fatal(err)
	}
	// Delete a non-tree edge via the service and check the published
	// epoch against a fresh oracle run on the patched graph.
	sessBefore, err := svc.DecodeSession(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	inTree := make([]bool, snap.Graph.M())
	for u, p := range sessBefore.ParentPorts {
		if p >= 0 {
			inTree[snap.Graph.HalfAt(graph.NodeID(u), p).Edge] = true
		}
	}
	target := graph.EdgeID(-1)
	for e := 0; e < snap.Graph.M(); e++ {
		if !inTree[e] {
			target = graph.EdgeID(e)
			break
		}
	}
	if target < 0 {
		t.Fatal("no non-tree edge")
	}
	patched := snap.Graph.Clone()
	if err := patched.ApplyBatch(graph.Batch{Deletions: []graph.EdgeID{target}}); err != nil {
		t.Fatal(err)
	}
	want, err := core.BuildAdvice(patched, 0, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}

	reply, err := svc.Update(context.Background(), "g", graph.Batch{Deletions: []graph.EdgeID{target}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("epoch after first update = %d, want 1", reply.Epoch)
	}
	for u := range want {
		got, err := svc.Advice("g", u)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != 1 || got.Bits != want[u].String() {
			t.Fatalf("node %d after update: %+v, oracle says %q", u, got, want[u])
		}
	}
	// Decode of the new epoch re-runs and verifies.
	sess, err := svc.DecodeSession(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Seq != 1 || !sess.Verified {
		t.Fatalf("post-update session: %+v", sess)
	}
	// The canceled-update path leaves the epoch alone.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Update(canceled, "g", graph.Batch{Deletions: []graph.EdgeID{0}}); err == nil {
		t.Fatal("canceled update succeeded")
	}
	if info, _ := svc.InfoFor("g"); info.Epoch != 1 {
		t.Fatalf("canceled update moved the epoch to %d", info.Epoch)
	}
}

// TestServiceRoundTrip100k is the acceptance test of the serving layer:
// an n=10⁵ oracle run saved to disk, reloaded through the store, and
// served by the service must answer at least 100k advice queries per
// second across 4 workers, every answer byte-identical to a fresh oracle
// run on the same graph.
func TestServiceRoundTrip100k(t *testing.T) {
	const n = 100_000
	g := gen.RandomConnected(n, 3*n, rand.New(rand.NewSource(42)), gen.Options{Weights: gen.WeightsDistinct})
	fresh, err := core.BuildAdvice(g, 0, core.DefaultCap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.mstadv")
	if err := store.Save(path, &store.Snapshot{Graph: g, Root: 0, Cap: core.DefaultCap, Advice: fresh}); err != nil {
		t.Fatal(err)
	}
	snap, err := store.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := New()
	if err := svc.Register("big", snap); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const queriesPerWorker = 50_000
	var bad atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				node := (w*queriesPerWorker + i*7919) % n
				bits, _, err := svc.AdviceBits("big", node)
				if err != nil || !bits.Equal(fresh[node]) {
					bad.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if bad.Load() != 0 {
		t.Fatalf("%d workers saw advice that differs from a fresh oracle run", bad.Load())
	}
	qps := float64(workers*queriesPerWorker) / elapsed.Seconds()
	t.Logf("served %d queries across %d workers in %v (%.0f queries/sec)",
		workers*queriesPerWorker, workers, elapsed, qps)
	if qps < 100_000 {
		t.Fatalf("throughput %.0f queries/sec below the 100k/sec acceptance bar", qps)
	}
}

// TestConcurrentReadersDuringUpdate overlaps a write (batched dynamic
// update) with a storm of readers and checks the copy-on-write epoch
// contract under -race: every reply is byte-identical to the oracle
// advice OF ITS EPOCH — readers racing the swap see either the old or
// the new state, never a mix — and reads keep completing while the
// writer is busy (readers never block on the update).
func TestConcurrentReadersDuringUpdate(t *testing.T) {
	const n = 4096
	svc := New()
	snap := makeSnapshot(t, n, 3*n, 7)
	g0 := snap.Graph.Clone()
	if err := svc.Register("live", snap); err != nil {
		t.Fatal(err)
	}
	// Reference advice for epoch 0 and epoch 1. The update perturbs one
	// non-tree edge weight within tolerance (the advisor's fast path).
	ref := [2][]*bitstring.BitString{snap.Advice, nil}
	// Pick the update so it provably changes at least the graph weights.
	target := graph.EdgeID(-1)
	tree, err := mst.Kruskal(g0)
	if err != nil {
		t.Fatal(err)
	}
	inTree := make([]bool, g0.M())
	for _, e := range tree {
		inTree[e] = true
	}
	for e := 0; e < g0.M(); e++ {
		if !inTree[e] {
			target = graph.EdgeID(e)
			break
		}
	}
	newW := g0.MaxWeight() + 100
	patched := g0.Clone()
	if err := patched.ApplyBatch(graph.Batch{Weights: []graph.WeightUpdate{{Edge: target, W: newW}}}); err != nil {
		t.Fatal(err)
	}
	if ref[1], err = core.BuildAdvice(patched, 0, core.DefaultCap); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	stop := make(chan struct{})
	readsDuringUpdate := new(atomic.Int64)
	updating := new(atomic.Bool)
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := rng.Intn(n)
				bits, epoch, err := svc.AdviceBits("live", node)
				if err != nil {
					errCh <- err
					return
				}
				if epoch > 1 {
					errCh <- fmt.Errorf("impossible epoch %d at node %d", epoch, node)
					return
				}
				if !bits.Equal(ref[epoch][node]) {
					errCh <- fmt.Errorf("advice of node %d does not match its epoch %d reference", node, epoch)
					return
				}
				if updating.Load() {
					readsDuringUpdate.Add(1)
				}
			}
		}(r)
	}
	// Let readers spin up, then update. The first Update pays the lazy
	// advisor build (a full oracle + sensitivity run at n=4096), which
	// gives the readers a long in-progress write window to overlap with.
	time.Sleep(10 * time.Millisecond)
	updating.Store(true)
	reply, err := svc.Update(context.Background(), "live",
		graph.Batch{Weights: []graph.WeightUpdate{{Edge: target, W: newW}}})
	updating.Store(false)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("update published epoch %d, want 1", reply.Epoch)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("reader failed: %v", err)
	default:
	}
	if got := readsDuringUpdate.Load(); got == 0 {
		t.Fatal("no reads completed while the writer was busy — readers blocked on the update")
	} else {
		t.Logf("%d reads completed during the in-flight update", got)
	}
	// After the dust settles every node serves epoch-1 advice.
	for u := 0; u < n; u++ {
		bits, epoch, err := svc.AdviceBits("live", u)
		if err != nil || epoch != 1 || !bits.Equal(ref[1][u]) {
			t.Fatalf("node %d after update: epoch %d err %v", u, epoch, err)
		}
	}
}

func TestListAndStats(t *testing.T) {
	svc := New()
	for _, id := range []string{"b", "a", "c"} {
		if err := svc.Register(id, makeSnapshot(t, 32, 96, int64(len(id)))); err != nil {
			t.Fatal(err)
		}
	}
	infos := svc.List()
	if len(infos) != 3 || infos[0].ID != "a" || infos[1].ID != "b" || infos[2].ID != "c" {
		t.Fatalf("List = %+v, want a,b,c", infos)
	}
	if _, err := svc.Advice("a", 0); err != nil {
		t.Fatal(err)
	}
	st := svc.StatsNow()
	if st.Registered != 3 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
