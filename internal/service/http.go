package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"

	"mstadvice/internal/graph"
	"mstadvice/internal/graph/gen"
	"mstadvice/internal/store"
)

// HTTP/JSON surface of the service, shared by cmd/mstadviced and the
// tests. Endpoints (all JSON):
//
//	GET    /healthz                     liveness
//	GET    /v1/stats                    lifetime counters
//	GET    /v1/graphs                   list registered graphs
//	POST   /v1/graphs                   register: {"id", "path"} loads a
//	                                    store snapshot; {"id", "family",
//	                                    "n", "seed", "weights"} generates
//	                                    one and runs the oracle
//	GET    /v1/graphs/{id}              one graph's summary
//	DELETE /v1/graphs/{id}              drop
//	GET    /v1/graphs/{id}/advice?node=N   per-node advice bits
//	GET    /v1/graphs/{id}/tier?level=N    coarse tier as a standalone
//	                                    flat snapshot (level 0 or absent:
//	                                    coarsest available)
//	GET    /v1/graphs/{id}/decode       full local-MST reconstruction
//	GET    /v1/graphs/{id}/verify       decode + verdict only
//	POST   /v1/graphs/{id}/update       batched update: {"weights":
//	                                    [{"edge","w"}], "deletions": [...]}
//
// Handlers answer errors as {"error": "..."} with 400 (bad request),
// 404 (unknown graph) or 409 (duplicate registration). Request contexts
// flow into decode and update, so a client disconnect or server
// shutdown sheds the work (see advice.RunCtx / Advisor.UpdateCtx).

// registerRequest is the POST /v1/graphs body.
type registerRequest struct {
	ID string `json:"id"`
	// Problem selects the advice problem for generated instances
	// (default "mst"); stored snapshots carry their own problem ID and
	// reject a conflicting value here.
	Problem string `json:"problem,omitempty"`
	// Path registers a stored snapshot.
	Path string `json:"path,omitempty"`
	// Family/N/Seed/Weights generate an instance instead.
	Family  string `json:"family,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Weights string `json:"weights,omitempty"`
	Root    int    `json:"root,omitempty"`
}

// updateRequest is the POST /v1/graphs/{id}/update body.
type updateRequest struct {
	Weights []struct {
		Edge int   `json:"edge"`
		W    int64 `json:"w"`
	} `json:"weights,omitempty"`
	Deletions []int `json:"deletions,omitempty"`
}

// NewHandler returns the service's HTTP mux. allowPaths gates the
// register-by-path endpoint (the daemon enables it; embedded users that
// must not expose filesystem reads leave it off).
func NewHandler(s *Service, allowPaths bool) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatsNow())
	})
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		infos := s.List()
		if infos == nil {
			infos = []Info{}
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
			return
		}
		snap, err := snapshotFor(&req, allowPaths)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.Register(req.ID, snap); err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already registered") {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		info, err := s.InfoFor(req.ID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/graphs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.InfoFor(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/graphs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Drop(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown graph %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
	})
	mux.HandleFunc("GET /v1/graphs/{id}/advice", func(w http.ResponseWriter, r *http.Request) {
		node, err := strconv.Atoi(r.URL.Query().Get("node"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad or missing node parameter: %w", err))
			return
		}
		reply, err := s.Advice(r.PathValue("id"), node)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /v1/graphs/{id}/tier", func(w http.ResponseWriter, r *http.Request) {
		level := 0
		if raw := r.URL.Query().Get("level"); raw != "" {
			var err error
			if level, err = strconv.Atoi(raw); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad level parameter: %w", err))
				return
			}
		}
		reply, err := s.TierSnapshot(r.PathValue("id"), level)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /v1/graphs/{id}/decode", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.DecodeSession(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, sess)
	})
	mux.HandleFunc("GET /v1/graphs/{id}/verify", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.DecodeSession(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch": sess.Seq, "verified": sess.Verified, "verify_error": sess.VerifyErr,
		})
	})
	mux.HandleFunc("POST /v1/graphs/{id}/update", func(w http.ResponseWriter, r *http.Request) {
		var req updateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
			return
		}
		var b graph.Batch
		for _, wu := range req.Weights {
			b.Weights = append(b.Weights, graph.WeightUpdate{Edge: graph.EdgeID(wu.Edge), W: graph.Weight(wu.W)})
		}
		for _, e := range req.Deletions {
			b.Deletions = append(b.Deletions, graph.EdgeID(e))
		}
		reply, err := s.Update(r.Context(), r.PathValue("id"), b)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, reply)
	})
	return mux
}

// snapshotFor resolves a register request into a snapshot: a stored file
// or a generated instance.
func snapshotFor(req *registerRequest, allowPaths bool) (*store.Snapshot, error) {
	switch {
	case req.Path != "" && req.Family != "":
		return nil, fmt.Errorf("register: path and family are mutually exclusive")
	case req.Path != "":
		if !allowPaths {
			return nil, fmt.Errorf("register: loading snapshots by path is disabled on this server")
		}
		snap, err := store.OpenMapped(req.Path)
		if err != nil {
			return nil, err
		}
		if req.Problem != "" && req.Problem != snap.Problem {
			return nil, fmt.Errorf("register: snapshot %s stores problem %q, request says %q", req.Path, snap.Problem, req.Problem)
		}
		return snap, nil
	case req.Family != "":
		fam, err := gen.ByName(req.Family)
		if err != nil {
			return nil, err
		}
		var mode gen.WeightMode
		switch req.Weights {
		case "", "distinct":
			mode = gen.WeightsDistinct
		case "random":
			mode = gen.WeightsRandom
		case "unit":
			mode = gen.WeightsUnit
		default:
			return nil, fmt.Errorf("register: unknown weight mode %q", req.Weights)
		}
		g, err := fam.Generate(req.N, rand.New(rand.NewSource(req.Seed)), gen.Options{Weights: mode})
		if err != nil {
			return nil, err
		}
		if req.Root < 0 || req.Root >= g.N() {
			return nil, fmt.Errorf("register: root %d out of range [0,%d)", req.Root, g.N())
		}
		// No advice in the snapshot: Register runs the problem's oracle.
		return &store.Snapshot{Problem: req.Problem, Graph: g, Root: graph.NodeID(req.Root)}, nil
	default:
		return nil, fmt.Errorf("register: need either path or family")
	}
}

// statusFor maps service errors onto HTTP statuses: unknown graphs and
// tiers are 404, cancellations 503, everything else 400 — a client
// mistake is never a 500 (pinned by TestHTTPErrorCodes).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
