package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"mstadvice/internal/store"
)

// doJSON issues one request against the test server and decodes the
// reply into out (when non-nil), returning the status code.
func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding reply: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	snap := makeSnapshot(t, 64, 192, 9)
	path := filepath.Join(t.TempDir(), "g.mstadv")
	if err := store.Save(path, snap); err != nil {
		t.Fatal(err)
	}
	svc := New()
	srv := httptest.NewServer(NewHandler(svc, true))
	defer srv.Close()

	if code := doJSON(t, srv, "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Register from the stored file.
	var info Info
	code := doJSON(t, srv, "POST", "/v1/graphs", map[string]any{"id": "g", "path": path}, &info)
	if code != http.StatusCreated || info.N != 64 || info.Epoch != 0 {
		t.Fatalf("register = %d, %+v", code, info)
	}
	// Duplicate is a conflict.
	if code := doJSON(t, srv, "POST", "/v1/graphs", map[string]any{"id": "g", "path": path}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409", code)
	}
	// Register a generated instance.
	if code := doJSON(t, srv, "POST", "/v1/graphs",
		map[string]any{"id": "gen", "family": "grid", "n": 16, "seed": 3}, &info); code != http.StatusCreated {
		t.Fatalf("generate register = %d", code)
	}

	var infos []Info
	if code := doJSON(t, srv, "GET", "/v1/graphs", nil, &infos); code != http.StatusOK || len(infos) != 2 {
		t.Fatalf("list = %d with %d entries, want 2", code, len(infos))
	}

	// Advice: every node's bits match the snapshot.
	for u := 0; u < snap.Graph.N(); u++ {
		var reply AdviceReply
		code := doJSON(t, srv, "GET", fmt.Sprintf("/v1/graphs/g/advice?node=%d", u), nil, &reply)
		if code != http.StatusOK || reply.Bits != snap.Advice[u].String() {
			t.Fatalf("advice of node %d = %d, %+v", u, code, reply)
		}
	}
	// Bad node and unknown graph.
	if code := doJSON(t, srv, "GET", "/v1/graphs/g/advice?node=zzz", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad node = %d, want 400", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/graphs/g/advice?node=100000", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node = %d, want 400", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/graphs/nope/advice?node=0", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph = %d, want 404", code)
	}

	// Decode + verify.
	var sess Session
	if code := doJSON(t, srv, "GET", "/v1/graphs/g/decode", nil, &sess); code != http.StatusOK || !sess.Verified {
		t.Fatalf("decode = %d, %+v", code, sess)
	}
	var verdict struct {
		Verified bool `json:"verified"`
	}
	if code := doJSON(t, srv, "GET", "/v1/graphs/g/verify", nil, &verdict); code != http.StatusOK || !verdict.Verified {
		t.Fatalf("verify = %d, %+v", code, verdict)
	}

	// Update: perturb edge 0's weight upward (any outcome path is fine;
	// the epoch must advance and the new epoch must verify).
	var up UpdateReply
	w := snap.Graph.Weight(0)
	code = doJSON(t, srv, "POST", "/v1/graphs/g/update",
		map[string]any{"weights": []map[string]any{{"edge": 0, "w": int(w) + 1}}}, &up)
	if code != http.StatusOK || up.Epoch != 1 {
		t.Fatalf("update = %d, %+v", code, up)
	}
	if code := doJSON(t, srv, "GET", "/v1/graphs/g/verify", nil, &verdict); code != http.StatusOK || !verdict.Verified {
		t.Fatalf("verify after update = %d, %+v", code, verdict)
	}

	// Malformed update bodies are 400s, not crashes.
	if code := doJSON(t, srv, "POST", "/v1/graphs/g/update", "not an object", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed update = %d, want 400", code)
	}
	// An invalid batch (edge out of range) reports the service error.
	if code := doJSON(t, srv, "POST", "/v1/graphs/g/update",
		map[string]any{"deletions": []int{99999}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad batch = %d, want 400", code)
	}

	// Stats and drop.
	var st Stats
	if code := doJSON(t, srv, "GET", "/v1/stats", nil, &st); code != http.StatusOK || st.Registered != 2 || st.Updates != 1 {
		t.Fatalf("stats = %d, %+v", code, st)
	}
	if code := doJSON(t, srv, "DELETE", "/v1/graphs/g", nil, nil); code != http.StatusOK {
		t.Fatalf("drop = %d", code)
	}
	if code := doJSON(t, srv, "DELETE", "/v1/graphs/g", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double drop = %d, want 404", code)
	}
}

func TestHTTPPathRegistrationGate(t *testing.T) {
	svc := New()
	srv := httptest.NewServer(NewHandler(svc, false))
	defer srv.Close()
	code := doJSON(t, srv, "POST", "/v1/graphs", map[string]any{"id": "g", "path": "/etc/passwd"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("path registration on a gated server = %d, want 400", code)
	}
	// Family registration still works.
	if code := doJSON(t, srv, "POST", "/v1/graphs",
		map[string]any{"id": "g", "family": "ring", "n": 8}, nil); code != http.StatusCreated {
		t.Fatalf("family registration = %d, want 201", code)
	}
}

func TestHTTPRegisterValidation(t *testing.T) {
	svc := New()
	srv := httptest.NewServer(NewHandler(svc, true))
	defer srv.Close()
	for name, body := range map[string]any{
		"no source":    map[string]any{"id": "x"},
		"both sources": map[string]any{"id": "x", "path": "p", "family": "ring"},
		"bad family":   map[string]any{"id": "x", "family": "klein-bottle", "n": 8},
		"bad weights":  map[string]any{"id": "x", "family": "ring", "n": 8, "weights": "prime"},
		"bad root":     map[string]any{"id": "x", "family": "ring", "n": 8, "root": 99},
		"missing file": map[string]any{"id": "x", "path": "/nonexistent.mstadv"},
		"empty id":     map[string]any{"family": "ring", "n": 8},
		"malformed":    "][",
	} {
		if code := doJSON(t, srv, "POST", "/v1/graphs", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: register = %d, want 400", name, code)
		}
	}
}

// TestHTTPCanceledRequest pins request-context propagation through the
// handlers: a request whose context is already canceled when the
// handler runs (a disconnected client, or a shutdown past the drain
// deadline) answers 503 with a JSON error body — and does none of the
// decode or update work it was asking for.
func TestHTTPCanceledRequest(t *testing.T) {
	svc := New()
	if err := svc.Register("g", makeSnapshot(t, 64, 192, 9)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(svc, false)
	for _, tc := range []struct{ method, path, body string }{
		{"GET", "/v1/graphs/g/decode", ""},
		{"GET", "/v1/graphs/g/verify", ""},
		{"POST", "/v1/graphs/g/update", `{"weights":[{"edge":1,"w":777}]}`},
	} {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req := httptest.NewRequest(tc.method, tc.path, body)
		ctx, cancel := context.WithCancel(req.Context())
		cancel()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req.WithContext(ctx))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s with canceled context = %d, want 503 (body %s)", tc.method, tc.path, rec.Code, rec.Body)
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s %s: body %q is not a JSON error object", tc.method, tc.path, rec.Body)
		}
	}
	if st := svc.StatsNow(); st.Decodes != 0 || st.Updates != 0 {
		t.Errorf("canceled requests did work anyway: %+v", st)
	}
}

// TestHTTPErrorCodes is the error-code audit: every client mistake —
// malformed JSON, unknown graphs, bad parameters, conflicting
// registrations — answers a 4xx with a JSON error body, never a 500.
func TestHTTPErrorCodes(t *testing.T) {
	svc := New()
	if err := svc.Register("g", makeSnapshot(t, 64, 192, 9)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(svc, false)
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"register malformed JSON", "POST", "/v1/graphs", `{"id": `, 400},
		{"register without source", "POST", "/v1/graphs", `{"id":"x"}`, 400},
		{"register path disabled", "POST", "/v1/graphs", `{"id":"x","path":"/etc/passwd"}`, 400},
		{"register path and family", "POST", "/v1/graphs", `{"id":"x","path":"a","family":"random","n":8}`, 400},
		{"register unknown family", "POST", "/v1/graphs", `{"id":"x","family":"nope","n":8}`, 400},
		{"register unknown problem", "POST", "/v1/graphs", `{"id":"x","family":"random","n":8,"problem":"nope"}`, 400},
		{"register unknown weights", "POST", "/v1/graphs", `{"id":"x","family":"random","n":8,"weights":"nope"}`, 400},
		{"register root out of range", "POST", "/v1/graphs", `{"id":"x","family":"random","n":8,"root":9999}`, 400},
		{"register duplicate", "POST", "/v1/graphs", `{"id":"g","family":"random","n":8}`, 409},
		{"info unknown graph", "GET", "/v1/graphs/nope", "", 404},
		{"drop unknown graph", "DELETE", "/v1/graphs/nope", "", 404},
		{"advice missing node", "GET", "/v1/graphs/g/advice", "", 400},
		{"advice bad node", "GET", "/v1/graphs/g/advice?node=abc", "", 400},
		{"advice node out of range", "GET", "/v1/graphs/g/advice?node=9999", "", 400},
		{"advice unknown graph", "GET", "/v1/graphs/nope/advice?node=0", "", 404},
		{"tier bad level", "GET", "/v1/graphs/g/tier?level=abc", "", 400},
		{"tier unknown graph", "GET", "/v1/graphs/nope/tier", "", 404},
		{"tier absent", "GET", "/v1/graphs/g/tier?level=3", "", 404},
		{"decode unknown graph", "GET", "/v1/graphs/nope/decode", "", 404},
		{"verify unknown graph", "GET", "/v1/graphs/nope/verify", "", 404},
		{"update malformed JSON", "POST", "/v1/graphs/g/update", `{"weights":`, 400},
		{"update unknown graph", "POST", "/v1/graphs/nope/update", `{}`, 404},
		{"update bad edge", "POST", "/v1/graphs/g/update", `{"weights":[{"edge":123456,"w":1}]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req := httptest.NewRequest(tc.method, tc.path, body)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("%s %s = %d, want %d (body %s)", tc.method, tc.path, rec.Code, tc.want, rec.Body)
			}
			if rec.Code >= 500 {
				t.Fatalf("client mistake answered as a server error: %d", rec.Code)
			}
			var e map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Fatalf("%s %s: body %q is not a JSON error object", tc.method, tc.path, rec.Body)
			}
		})
	}
}
