// Package report renders the experiment tables and series as aligned
// monospaced text, the common output format of cmd/experiments, the root
// benchmarks and EXPERIMENTS.md.
//
// See DESIGN.md §3 for the experiment catalog these tables render.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "NO"
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}
