package report

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tab := New("title", "a", "longer-column", "b")
	tab.Add(1, 2.5, true)
	tab.Add("wide-cell-content", 0.0, false)
	tab.Note = "a note"
	out := tab.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "a note") {
		t.Fatalf("missing title/note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, two rows, note
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("float not formatted: %q", lines[3])
	}
	if !strings.Contains(lines[3], "yes") || !strings.Contains(lines[4], "NO") {
		t.Fatalf("bools not formatted:\n%s", out)
	}
	// Columns align: header and separator have equal width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := New("", "x")
	out := tab.String()
	if !strings.HasPrefix(out, "x") {
		t.Fatalf("unexpected render: %q", out)
	}
}
