module mstadvice

go 1.24
