package mstadvice_test

import (
	"fmt"
	"math/rand"

	"mstadvice"
)

// ExampleRun demonstrates the paper's main scheme end to end on a small
// hand-built network.
func ExampleRun() {
	g, err := mstadvice.NewBuilder(4).
		AddEdge(0, 1, 1).
		AddEdge(1, 2, 2).
		AddEdge(2, 3, 3).
		AddEdge(3, 0, 4).
		Build()
	if err != nil {
		panic(err)
	}
	res, err := mstadvice.Run(mstadvice.ConstantAdvice(), g, 0, mstadvice.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", res.Verified)
	fmt.Println("root:", res.Root)
	fmt.Println("max advice bits:", res.Advice.MaxBits)
	// Output:
	// verified: true
	// root: 0
	// max advice bits: 4
}

// ExampleTrivial shows the zero-round scheme: the whole answer rides in
// ⌈log n⌉ advice bits.
func ExampleTrivial() {
	g, _ := mstadvice.NewBuilder(3).
		AddEdge(0, 1, 5).
		AddEdge(1, 2, 3).
		AddEdge(0, 2, 8).
		Build()
	res, _ := mstadvice.Run(mstadvice.Trivial(), g, 2, mstadvice.RunOptions{})
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("messages:", res.Messages)
	fmt.Println("verified:", res.Verified)
	// Output:
	// rounds: 0
	// messages: 0
	// verified: true
}

// ExampleSchemeByName looks schemes up dynamically, as the CLI does.
func ExampleSchemeByName() {
	s, ok := mstadvice.SchemeByName("oneround")
	fmt.Println(ok, s.Name())
	_, ok = mstadvice.SchemeByName("no-such-scheme")
	fmt.Println(ok)
	// Output:
	// true oneround
	// false
}

// ExampleConstantAdviceRounds shows the exact decoder schedule against
// the paper's 9·⌈log n⌉ bound.
func ExampleConstantAdviceRounds() {
	exact, paper := mstadvice.ConstantAdviceRounds(1024)
	fmt.Println(exact, "<=", paper)
	// Output:
	// 80 <= 90
}

// ExampleNewLowerBoundFamily runs Theorem 1's pigeonhole experiment.
func ExampleNewLowerBoundFamily() {
	fam, err := mstadvice.NewLowerBoundFamily(12, 4)
	if err != nil {
		panic(err)
	}
	for _, m := range []int{0, 2, 3} {
		res := fam.Experiment(m)
		fmt.Printf("m=%d served %d/%d\n", m, res.Served, res.K)
	}
	// Output:
	// m=0 served 1/8
	// m=2 served 4/8
	// m=3 served 8/8
}

// ExampleGenRandomConnected generates a reproducible experiment graph.
func ExampleGenRandomConnected() {
	rng := rand.New(rand.NewSource(7))
	g := mstadvice.GenRandomConnected(10, 20, rng, mstadvice.GenOptions{})
	fmt.Println(g.N(), g.M(), g.Connected())
	// Output:
	// 10 20 true
}

// ExampleRun_async replays the main scheme's unmodified decoder on an
// asynchronous network: seeded per-message latencies under the
// α-synchronizer, whose overhead is accounted separately while the
// payload traffic stays byte-comparable to the synchronous run.
func ExampleRun_async() {
	g := mstadvice.GenRandomConnected(64, 192, rand.New(rand.NewSource(9)), mstadvice.GenOptions{})
	syncRes, err := mstadvice.Run(mstadvice.ConstantAdvice(), g, 0, mstadvice.RunOptions{})
	if err != nil {
		panic(err)
	}
	asyncRes, err := mstadvice.Run(mstadvice.ConstantAdvice(), g, 0, mstadvice.RunOptions{
		Async:   true,
		Latency: mstadvice.UniformLatency{Seed: 7, Min: 1, Max: 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", asyncRes.Verified)
	fmt.Println("same simulated rounds:", asyncRes.Pulses == syncRes.Rounds)
	fmt.Println("same payload traffic:", asyncRes.Messages == syncRes.Messages && asyncRes.MsgBits == syncRes.MsgBits)
	fmt.Println("synchronizer overhead booked separately:", asyncRes.SyncMessages > 0)
	// Output:
	// verified: true
	// same simulated rounds: true
	// same payload traffic: true
	// synchronizer overhead booked separately: true
}
