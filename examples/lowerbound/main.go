// Lowerbound demonstrates Theorem 1: with zero communication rounds,
// fewer than log k advice bits cannot identify the MST parent edge at a
// spine node of the paper's graph G_n, no matter how clever the oracle.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"mstadvice"
)

func main() {
	const n, i = 24, 6 // G_n on 2n nodes; adversary sits at spine node u_i
	fam, err := mstadvice.NewLowerBoundFamily(n, i)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G_%d: two spined copies of K_%d joined by a weight-0 bridge (%d nodes)\n",
		n, n, fam.Instances[0].N())
	fmt.Printf("adversary at spine node u_%d: k = %d rotated instances,\n", i, fam.K)
	fmt.Println("all presenting the identical zero-round view (same weight on every port)")
	fmt.Println()

	fmt.Printf("%-14s %-18s %-22s\n", "advice bits m", "instances served", "pigeonhole bound")
	for m := 0; m <= 6; m++ {
		res := fam.Experiment(m)
		marker := ""
		if res.Served == res.K {
			marker = "   <- full coverage"
		}
		fmt.Printf("%-14d %-18d %-22d%s\n", m, res.Served, res.Bound, marker)
	}
	fmt.Println()
	fmt.Println("a 0-round decoder outputs a function of (view, advice); the view is fixed")
	fmt.Println("across the family, so 2^m advice strings can name at most 2^m different")
	fmt.Println("ports — but the correct port differs in every one of the k instances.")
	fmt.Println("averaged over the spine this forces Ω(log n) advice bits per node, which")
	fmt.Println("is exactly what the trivial (⌈log n⌉, 0)-scheme pays. One round of")
	fmt.Println("communication (Theorem 2) collapses the average to a constant.")
}
