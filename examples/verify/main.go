// Verify demonstrates composing construction with distributed
// verification: the 12-bit advising scheme computes the MST, a
// proof-labeling oracle certifies the output with (rootID, depth) labels,
// and one more communication round lets every node check the global tree
// locally — including catching a tampered output.
//
//	go run ./examples/verify
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mstadvice"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := mstadvice.GenRandomConnected(40, 110, rng, mstadvice.GenOptions{})

	// Step 1: construct the MST with 12 bits of advice per node.
	res, err := mstadvice.Run(mstadvice.ConstantAdvice(), g, 0, mstadvice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constructed MST on n=%d in %d rounds (max advice %d bits)\n",
		res.N, res.Rounds, res.Advice.MaxBits)

	// Step 2: certify and verify distributively in one round.
	labels, err := mstadvice.AssignTreeLabels(g, res.ParentPorts)
	if err != nil {
		log.Fatal(err)
	}
	ok, _, err := mstadvice.VerifyTreeLabels(g, res.ParentPorts, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("honest output accepted by all nodes:", ok)

	// Step 3: tamper with one node's output; someone must notice.
	bad := append([]int(nil), res.ParentPorts...)
	victim := 7
	bad[victim] = (bad[victim] + 1) % g.Degree(mstadvice.NodeID(victim))
	ok, verdicts, err := mstadvice.VerifyTreeLabels(g, bad, labels)
	if err != nil {
		log.Fatal(err)
	}
	rejecting := 0
	for _, v := range verdicts {
		if !v {
			rejecting++
		}
	}
	fmt.Printf("tampered output accepted: %v (%d node(s) rejected)\n", ok, rejecting)
	fmt.Println()
	fmt.Println("the labels certify spanning-tree structure in one round; minimality")
	fmt.Println("verification needs Ω(log² n)-bit labels (Korman-Kutten) and is checked")
	fmt.Println("centrally by the harness instead.")
}
