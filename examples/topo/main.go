// Topo demonstrates the advice-problem platform (DESIGN.md §2.8) on its
// second registered problem: topology recognition with advice. The same
// oracle/decoder machinery that computes MSTs hands every node the
// graph's topology class — and the beacon radius trades advice bits
// against rounds exactly like the paper's MST schemes do.
//
//	go run ./examples/topo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mstadvice"
)

func main() {
	fmt.Println("registered advice problems:")
	for _, p := range mstadvice.Problems() {
		fmt.Printf("  %-5s canonical scheme %q\n", p.Name(), p.Scheme().Name())
	}
	fmt.Println()

	g := mstadvice.GenGrid(24, 24, rand.New(rand.NewSource(7)), mstadvice.GenOptions{})
	fmt.Printf("grid, n=%d, m=%d — every node must output class %#08x\n\n", g.N(), g.M(), mstadvice.TopoClass(g))

	fmt.Printf("%-14s %-20s %-10s %-10s\n", "scheme", "advice total [bits]", "rounds", "verified")
	for _, s := range []mstadvice.Scheme{
		mstadvice.TopoFlood(0), // one tag at the root, flood everywhere
		mstadvice.TopoFlood(4), // beacons every 5 BFS levels
		mstadvice.TopoDirect(), // the class at every node, zero rounds
	} {
		res, err := mstadvice.Run(s, g, 0, mstadvice.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-20d %-10d %-10v\n", res.Scheme, res.Advice.TotalBits, res.Rounds, res.Verified)
	}
	fmt.Println()

	// The decoders are engine-agnostic: the same scheme replays on the
	// asynchronous event engine under an adversarial scheduler.
	res, err := mstadvice.Run(mstadvice.TopoFlood(0), g, 0, mstadvice.RunOptions{
		Async:     true,
		Latency:   mstadvice.UniformLatency{Seed: 3, Min: 1, Max: 9},
		Scheduler: mstadvice.SchedulerLIFO(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async (LIFO adversary): %s, virtual time %d, verified %v\n", res.Output, res.VirtualTime, res.Verified)
	fmt.Println()

	// And the lower bound replays too: k chord positions on a ring are
	// pairwise non-isomorphic but indistinguishable at the target node,
	// so m advice bits serve at most 2^m of them.
	fam, err := mstadvice.NewTopoLowerBoundFamily(48, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound on the %d-cycle, k=%d chord positions:\n", 48, fam.K)
	for m := 0; m <= 3; m++ {
		r := fam.Experiment(m)
		fmt.Printf("  m=%d: served %d/%d (pigeonhole bound %d)\n", m, r.Served, r.K, r.Bound)
	}
}
