// Quickstart: build a small weighted network by hand, run the paper's
// main (12-bit advice, O(log n) rounds) scheme on it, and print the
// rooted minimum spanning tree each node computed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mstadvice"
)

func main() {
	// A 6-node network: a cheap ring 0-1-2-3-4-5 with two expensive
	// chords. Ports are assigned in insertion order at each endpoint.
	g, err := mstadvice.NewBuilder(6).
		AddEdge(0, 1, 4).
		AddEdge(1, 2, 2).
		AddEdge(2, 3, 6).
		AddEdge(3, 4, 1).
		AddEdge(4, 5, 3).
		AddEdge(5, 0, 5).
		AddEdge(0, 3, 9).
		AddEdge(1, 4, 8).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The oracle sees the whole graph and hands every node at most 12
	// bits; the decoder nodes then reconstruct the MST in O(log n)
	// synchronous rounds knowing only their own ports, weights and advice.
	const root = 0
	res, err := mstadvice.Run(mstadvice.ConstantAdvice(), g, root, mstadvice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme %q on n=%d, m=%d\n", res.Scheme, res.N, res.M)
	fmt.Printf("advice: max %d bits, avg %.2f bits\n", res.Advice.MaxBits, res.Advice.AvgBits)
	fmt.Printf("rounds: %d  (paper bound 9⌈log n⌉ = %d)\n\n", res.Rounds, 9*3)

	fmt.Println("node  output")
	for u, port := range res.ParentPorts {
		if port == -1 {
			fmt.Printf("  %d   I am the root\n", u)
			continue
		}
		fmt.Printf("  %d   parent via port %d -> node %d (weight %d)\n",
			u, port, g.HalfAt(mstadvice.NodeID(u), port).To, g.HalfAt(mstadvice.NodeID(u), port).W)
	}
	if res.Verified {
		fmt.Println("\nverified: the outputs form exactly the rooted minimum spanning tree")
	} else {
		fmt.Printf("\nverification FAILED: %v\n", res.VerifyErr)
	}
}
