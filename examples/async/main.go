// Asynchronous execution: run the paper's 12-bit-advice scheme on a real
// asynchronous network — per-message delivery delays drawn from a seeded
// latency model, with adversarial delivery policies — and compare it
// against the synchronous run it simulates.
//
// The paper is stated in the synchronous model, but its claims are about
// information, not timing: the α-synchronizer (internal/synch, DESIGN.md
// §2.7) replays the unmodified decoder on the event-driven engine, and
// the engine books the price of simulating synchrony — acks, safety
// announcements, pulse tags — separately from the algorithm's own
// traffic, so the comparison stays honest.
//
//	go run ./examples/async
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mstadvice"
)

func main() {
	const n = 128
	g := mstadvice.GenRandomConnected(n, 3*n, rand.New(rand.NewSource(7)), mstadvice.GenOptions{})
	scheme := mstadvice.ConstantAdvice()

	// The synchronous reference: the model the paper is stated in.
	syncRes, err := mstadvice.Run(scheme, g, 0, mstadvice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronous reference on n=%d, m=%d:\n", syncRes.N, syncRes.M)
	fmt.Printf("  rounds %d, payload %d messages / %d bits, verified %v\n\n",
		syncRes.Rounds, syncRes.Messages, syncRes.MsgBits, syncRes.Verified)

	// The same scheme, same advice, same decoder — on an asynchronous
	// network under three delivery policies. Payload columns must match
	// the synchronous run exactly; only timing and overhead may differ.
	policies := []struct {
		name  string
		sched mstadvice.AsyncScheduler
	}{
		{"fifo (default links)", mstadvice.SchedulerFIFO()},
		{"lifo (overtaking adversary)", mstadvice.SchedulerLIFO()},
		{"maxdelay (slowest-link adversary)", mstadvice.SchedulerMaxDelay(16)},
	}
	fmt.Println("asynchronous executions (uniform latency 1..16, seed 42):")
	for _, p := range policies {
		res, err := mstadvice.Run(scheme, g, 0, mstadvice.RunOptions{
			Async:     true,
			Latency:   mstadvice.UniformLatency{Seed: 42, Min: 1, Max: 16},
			Scheduler: p.sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		parity := res.Verified &&
			res.Pulses == syncRes.Rounds &&
			res.Messages == syncRes.Messages &&
			res.MsgBits == syncRes.MsgBits
		fmt.Printf("  %-34s virtual time %5d, %d simulated rounds\n", p.name, res.VirtualTime, res.Pulses)
		fmt.Printf("  %-34s payload %d msgs / %d bits; synchronizer overhead %d msgs / %d bits\n",
			"", res.Messages, res.MsgBits, res.SyncMessages, res.SyncBits)
		fmt.Printf("  %-34s exact parity with the synchronous run: %v\n\n", "", parity)
	}
}
