// Tradeoff sweeps every advising scheme over growing torus-like grids and
// prints the knowledge-versus-time tradeoff that motivates the paper: how
// many bits of oracle advice buy how many saved communication rounds.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mstadvice"
)

func main() {
	fmt.Println("advice bits (max/avg) and rounds per scheme on square grids")
	fmt.Println()
	fmt.Printf("%-8s %-6s %-22s %-10s %-14s\n", "scheme", "n", "advice max/avg [bits]", "rounds", "max msg [bits]")
	for _, side := range []int{4, 8, 16, 24} {
		rng := rand.New(rand.NewSource(int64(side)))
		g := mstadvice.GenGrid(side, side, rng, mstadvice.GenOptions{})
		for _, s := range mstadvice.Schemes() {
			res, err := mstadvice.Run(s, g, 0, mstadvice.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Verified {
				log.Fatalf("%s on %d-grid: %v", s.Name(), side, res.VerifyErr)
			}
			fmt.Printf("%-8s %-6d %3d / %-16.2f %-10d %-14d\n",
				s.Name(), res.N, res.Advice.MaxBits, res.Advice.AvgBits, res.Rounds, res.MaxMsgBits)
		}
		fmt.Println()
	}
	fmt.Println("reading guide:")
	fmt.Println("  trivial     ⌈log n⌉ bits, zero rounds — the whole answer is in the advice")
	fmt.Println("  oneround    O(1) bits on average, one round — Theorem 2")
	fmt.Println("  core        ≤ 12 bits, Θ(log n) rounds — Theorem 3, the paper's headline")
	fmt.Println("  localgather zero bits, Θ(diameter) rounds, but message sizes explode")
	fmt.Println("  noadvice    zero bits and CONGEST-size messages, but poly(n) rounds")
}
