// Congest contrasts bandwidth profiles: the no-advice LOCAL-model
// baseline solves MST in diameter time by shipping whole subgraphs, while
// the paper's 12-bit scheme keeps every message polylogarithmic. This is
// the CONGEST-model story behind the paper's upper bounds ("all our
// algorithms send at most O(log n) bits through each edge at each round").
//
//	go run ./examples/congest
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mstadvice"
)

func main() {
	fmt.Println("bandwidth vs time on a random connected graph (m = 3n)")
	fmt.Println()
	fmt.Printf("%-8s %-12s %-8s %-16s %-16s %-14s\n",
		"n", "scheme", "rounds", "total msg bits", "max msg bits", "B=⌈log n⌉")
	for _, n := range []int{32, 128, 512} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := mstadvice.GenRandomConnected(n, 3*n, rng, mstadvice.GenOptions{})
		logn := 0
		for 1<<uint(logn) < n {
			logn++
		}
		for _, name := range []string{"core", "localgather", "noadvice"} {
			s, _ := mstadvice.SchemeByName(name)
			res, err := mstadvice.Run(s, g, 0, mstadvice.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Verified {
				log.Fatalf("%s: %v", name, res.VerifyErr)
			}
			fmt.Printf("%-8d %-12s %-8d %-16d %-16d %-14d\n",
				res.N, name, res.Rounds, res.MsgBits, res.MaxMsgBits, logn)
		}
		fmt.Println()
	}
	fmt.Println("localgather beats everyone on rounds (Θ(D)) but its largest message")
	fmt.Println("carries a constant fraction of the whole graph; core spends Θ(log n)")
	fmt.Println("rounds yet never ships more than O(log² n) bits on an edge.")
}
