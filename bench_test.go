package mstadvice

// One benchmark per reproduction experiment (E1..E8, DESIGN.md §3): each
// iteration regenerates the experiment's tables at a bench-sized
// configuration, exercising the oracle, the simulator and the verifier end
// to end. cmd/experiments prints the same tables at full size. The
// Benchmark*Scale benches isolate the main scheme's and the engine's raw
// cost.

import (
	"math/rand"
	"runtime"
	"testing"

	"mstadvice/internal/experiments"
)

var benchCfg = experiments.Config{
	Sizes:    []int{32, 128},
	Families: []string{"path", "random"},
	Seed:     42,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run := experiments.Registry()[id]
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := run(benchCfg)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkE1TrivialScheme regenerates E1: the (⌈log n⌉, 0)-scheme profile.
func BenchmarkE1TrivialScheme(b *testing.B) { benchExperiment(b, "e1") }

// BenchmarkE2LowerBound regenerates E2: the Theorem 1 pigeonhole tables.
func BenchmarkE2LowerBound(b *testing.B) { benchExperiment(b, "e2") }

// BenchmarkE3OneRound regenerates E3: Theorem 2's constant-average profile.
func BenchmarkE3OneRound(b *testing.B) { benchExperiment(b, "e3") }

// BenchmarkE4ConstantAdvice regenerates E4: the main theorem's (12, ~9 log n)
// profile.
func BenchmarkE4ConstantAdvice(b *testing.B) { benchExperiment(b, "e4") }

// BenchmarkE5Tradeoff regenerates E5: rounds vs n for all five schemes.
func BenchmarkE5Tradeoff(b *testing.B) { benchExperiment(b, "e5") }

// BenchmarkE6Decomposition regenerates E6: Lemma 1/2 and Claim 1 measurements.
func BenchmarkE6Decomposition(b *testing.B) { benchExperiment(b, "e6") }

// BenchmarkE7CapAblation regenerates E7: the per-node cap sweep.
func BenchmarkE7CapAblation(b *testing.B) { benchExperiment(b, "e7") }

// BenchmarkE8Congest regenerates E8: the message-size accounting.
func BenchmarkE8Congest(b *testing.B) { benchExperiment(b, "e8") }

// BenchmarkE9PhaseDynamics regenerates E9: per-phase fragment statistics.
func BenchmarkE9PhaseDynamics(b *testing.B) { benchExperiment(b, "e9") }

// BenchmarkE10RoundProfile regenerates E10: per-window communication
// profile of the main scheme.
func BenchmarkE10RoundProfile(b *testing.B) { benchExperiment(b, "e10") }

// BenchmarkConstantAdviceScale runs the Theorem 3 scheme alone on a larger
// instance: oracle + O(log n)-round simulation + verification.
func BenchmarkConstantAdviceScale(b *testing.B) {
	g := GenRandomConnected(2048, 6144, rand.New(rand.NewSource(1)), GenOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(ConstantAdvice(), g, 0, RunOptions{})
		if err != nil || !res.Verified {
			b.Fatalf("%v / %v", err, res.VerifyErr)
		}
	}
}

// BenchmarkOneRoundScale runs the Theorem 2 scheme alone at scale.
func BenchmarkOneRoundScale(b *testing.B) {
	g := GenRandomConnected(4096, 12288, rand.New(rand.NewSource(1)), GenOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(OneRound(), g, 0, RunOptions{})
		if err != nil || !res.Verified {
			b.Fatalf("%v / %v", err, res.VerifyErr)
		}
	}
}

// BenchmarkEngineParallelism compares sequential and parallel round
// execution of the simulator on the same workload, at the congested-
// clique-ish scale (n >= 10 000) the slot-based router was built for. It
// reports allocations per simulated round alongside the standard metrics
// (the seed engine measured ~30 000 allocs/round here; the slot router
// holds it under half that).
func BenchmarkEngineParallelism(b *testing.B) {
	g := GenRandomConnected(10000, 30000, rand.New(rand.NewSource(2)), GenOptions{})
	for _, mode := range []struct {
		name string
		opt  RunOptions
	}{
		{"sequential", RunOptions{Sequential: true}},
		{"parallel", RunOptions{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			rounds := 0
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < b.N; i++ {
				res, err := Run(ConstantAdvice(), g, 0, mode.opt)
				if err != nil || !res.Verified {
					b.Fatalf("%v / %v", err, res.VerifyErr)
				}
				rounds += res.Rounds
			}
			runtime.ReadMemStats(&after)
			if rounds > 0 {
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(rounds), "allocs/round")
			}
		})
	}
}
