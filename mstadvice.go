// Package mstadvice is a Go reproduction of "Local MST Computation with
// Short Advice" by Pierre Fraigniaud, Amos Korman and Emmanuelle Lebhar
// (SPAA 2007): distributed minimum-spanning-tree computation where an
// all-seeing oracle hands every node a few bits of advice, traded against
// the number of synchronous communication rounds.
//
// The package is a facade over the internal implementation. It exposes:
//
//   - the network model: weighted, port-numbered graphs (Graph, Builder)
//     and generators for the experiment families (Gen* functions);
//   - the advising-scheme framework (Scheme, Run, Result) and the five
//     schemes: Trivial (⌈log n⌉ bits, 0 rounds), OneRound (constant
//     average advice, 1 round), ConstantAdvice (the paper's main result:
//     12 bits, Θ(log n) rounds), and the no-advice baselines LocalGather
//     (Θ(D) rounds, huge messages) and NoAdvice (GHS-style distributed
//     Borůvka);
//   - the Theorem 1 lower-bound machinery (BuildGn, NewLowerBoundFamily);
//   - the dynamic-network subsystem: batched in-place graph updates
//     (Batch, Graph.ApplyBatch), the MST sensitivity oracle
//     (AnalyzeSensitivity), incremental advice maintenance
//     (NewDynamicAdvisor) and deterministic fault scenarios for the
//     simulator (Scenario, NonTreeLinkFailures);
//   - the store and serving layer: persisted oracle runs
//     (Snapshot, SaveSnapshot, LoadSnapshot, OpenSnapshot) and the
//     sharded concurrent advice server (AdviceService, NewAdviceService)
//     behind the mstadviced daemon;
//   - asynchronous execution (RunOptions.Async, DESIGN.md §2.7): the
//     unmodified decoders on an event-driven network with seeded
//     latencies (UniformLatency) and adversarial delivery policies
//     (SchedulerFIFO, SchedulerLIFO, SchedulerMaxDelay), synchronized
//     by Awerbuch's α-synchronizer with its overhead accounted
//     separately in the Result;
//   - the advice-problem platform (AdviceProblem, Problems,
//     ProblemByName; DESIGN.md §2.8): the oracle/decoder/verifier triple
//     behind Run generalized beyond MST, with topology recognition with
//     advice (TopologyRecognition, TopoFlood, TopoDirect) as the second
//     registered problem;
//   - hierarchical advice (Tower, HierScheme, BuildAdviceTiers;
//     DESIGN.md §2.9): the Borůvka contraction tower kept first-class,
//     the level-parameterized mst-hier-l schemes trading advice bits
//     for extra decompression rounds, and tiered snapshots whose coarse
//     instances the service hands out (AdviceService.TierSnapshot);
//   - fault-tolerant replicated serving (EpochLog, Replica,
//     ReplicaClient; DESIGN.md §2.10): a primary's epoch history as a
//     durable CRC-framed log, followers tailing it over TCP with
//     consistent-prefix reads, a failover client with degraded
//     coarse-tier reads, and the deterministic fault-injecting
//     ChaosProxy that proves the guarantees under kill/restart chaos.
//
// See README.md for a tour, DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-versus-measured record.
package mstadvice

import (
	"math/rand"

	"mstadvice/internal/advice"
	"mstadvice/internal/bitstring"
	"mstadvice/internal/boruvka"
	"mstadvice/internal/chaos"
	"mstadvice/internal/core"
	"mstadvice/internal/dynamic"
	"mstadvice/internal/graph"
	"mstadvice/internal/graph/gen"
	"mstadvice/internal/hier"
	"mstadvice/internal/lowerbound"
	"mstadvice/internal/problem"
	"mstadvice/internal/problem/mstp"
	"mstadvice/internal/problem/topo"
	"mstadvice/internal/replica"
	"mstadvice/internal/schemes/localgather"
	"mstadvice/internal/schemes/noadvice"
	"mstadvice/internal/schemes/oneround"
	"mstadvice/internal/schemes/pipeline"
	"mstadvice/internal/schemes/trivial"
	"mstadvice/internal/service"
	"mstadvice/internal/sim"
	"mstadvice/internal/store"
	"mstadvice/internal/verifylabel"
)

// Graph model re-exports.
type (
	// Graph is an immutable weighted simple graph with per-node port
	// numbering — the network model of the paper.
	Graph = graph.Graph
	// Builder assembles a Graph edge by edge.
	Builder = graph.Builder
	// NodeID indexes nodes densely (0..N-1).
	NodeID = graph.NodeID
	// EdgeID indexes edges densely (0..M-1).
	EdgeID = graph.EdgeID
	// Weight is an edge weight.
	Weight = graph.Weight
	// BitString is an advice payload.
	BitString = bitstring.BitString
)

// NewBuilder creates a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Framework re-exports.
type (
	// Scheme is an (m, t)-advising scheme: a centralized oracle plus a
	// distributed decoder.
	Scheme = advice.Scheme
	// Result is the measured outcome of one run: advice profile, rounds,
	// message statistics and verification against the reference MST.
	Result = advice.Result
	// RunOptions configure the simulator.
	RunOptions = sim.Options
)

// Run executes a scheme end to end on g with the designated root: oracle,
// synchronous decoder simulation, and verification. Self-timed schemes
// (NoAdvice, ConstantAdviceAdaptive) get the quiescence synchronizer
// enabled automatically.
func Run(s Scheme, g *Graph, root NodeID, opt RunOptions) (*Result, error) {
	return advice.Run(s, g, root, opt)
}

// Asynchronous-execution re-exports (internal/sim, internal/synch; see
// DESIGN.md §2.7). Set RunOptions.Async to replay any scheme's
// unmodified decoder on the event-driven asynchronous engine under the
// α-synchronizer; RunOptions.Latency and RunOptions.Scheduler pick the
// timing model and the adversarial delivery policy.
type (
	// AsyncLatencyModel draws seeded, worker-count-independent
	// per-message delivery delays.
	AsyncLatencyModel = sim.LatencyModel
	// AsyncScheduler is an adversarial delivery policy.
	AsyncScheduler = sim.Scheduler
	// UniformLatency draws delays uniformly from [Min, Max], seeded.
	UniformLatency = sim.UniformLatency
	// UnitLatency delivers every message after exactly one tick.
	UnitLatency = sim.UnitLatency
)

// SchedulerFIFO preserves per-link send order (the default policy).
func SchedulerFIFO() AsyncScheduler { return sim.FIFO{} }

// SchedulerLIFO is the overtaking adversary: new traffic on a busy link
// jumps the queue.
func SchedulerLIFO() AsyncScheduler { return sim.LIFO{} }

// SchedulerMaxDelay delays every message by exactly d ticks (the
// slowest-link adversary).
func SchedulerMaxDelay(d int64) AsyncScheduler { return sim.MaxDelay{Delay: d} }

// Trivial returns the (⌈log n⌉, 0)-advising scheme.
func Trivial() Scheme { return trivial.Scheme{} }

// OneRound returns Theorem 2's (O(log² n), 1)-scheme with constant
// average advice size.
func OneRound() Scheme { return oneround.Scheme{} }

// ConstantAdvice returns Theorem 3's (12, O(log n))-scheme — the paper's
// main contribution.
func ConstantAdvice() Scheme { return core.Scheme{} }

// ConstantAdviceAdaptive returns the pulse-driven variant of the Theorem 3
// decoder (same oracle and advice; self-timed phases instead of the fixed
// worst-case schedule). An extension beyond the paper; see EXPERIMENTS.md
// E4b.
func ConstantAdviceAdaptive() Scheme { return core.Scheme{Adaptive: true} }

// LocalGather returns the no-advice (0, D+1) LOCAL-model baseline.
func LocalGather() Scheme { return localgather.Scheme{} }

// NoAdvice returns the no-advice GHS-style distributed Borůvka baseline.
func NoAdvice() Scheme { return noadvice.Scheme{} }

// Pipeline returns the no-advice upcast baseline (leader election + BFS
// tree + filtered edge pipelining): Θ(n + D) rounds with CONGEST-size
// messages.
func Pipeline() Scheme { return pipeline.Scheme{} }

// Schemes returns all MST schemes in increasing round order.
func Schemes() []Scheme {
	return []Scheme{Trivial(), OneRound(), ConstantAdvice(), ConstantAdviceAdaptive(), LocalGather(), NoAdvice(), Pipeline()}
}

// SchemeByName looks a scheme up by its Name across every registered
// advice problem ("core" and the other MST schemes, "topo-flood",
// "topo-flood-r3", "topo-direct", ...).
func SchemeByName(name string) (Scheme, bool) {
	_, s, ok := problem.BySchemeName(name)
	return s, ok
}

// Advice-problem platform re-exports (internal/problem; see DESIGN.md
// §2.8). An AdviceProblem packages the oracle/decoder/verifier triple
// that Run executes: the MST problem of the paper is one registrant,
// topology recognition with advice (Fusco–Pelc style class tags) a
// second; both run unmodified on the synchronous and asynchronous
// engines and are served by the same AdviceService.
type (
	// AdviceProblem is one registered oracle/decoder/verifier triple.
	AdviceProblem = problem.Problem
	// ProblemOutput is a problem's typed, verified measurement of a run.
	ProblemOutput = problem.Output
	// ProblemEncodeOptions parameterize a problem's oracle (advice cap,
	// flood radius, oracle worker count).
	ProblemEncodeOptions = problem.EncodeOptions
)

// RegisterProblem adds an advice problem to the registry, making its
// schemes resolvable through SchemeByName and its runs attributable in
// Result.Problem. It rejects duplicate problem names and scheme names
// already claimed by another problem. The built-in problems ("mst",
// "topo") register themselves.
func RegisterProblem(p AdviceProblem) error { return problem.Register(p) }

// Problems returns every registered advice problem, sorted by name.
func Problems() []AdviceProblem { return problem.Problems() }

// ProblemNames returns the sorted names of the registered problems.
func ProblemNames() []string { return problem.Names() }

// ProblemByName looks a registered advice problem up by name ("mst",
// "topo").
func ProblemByName(name string) (AdviceProblem, error) { return problem.ByName(name) }

// MSTProblem returns the paper's problem — minimum-spanning-tree
// computation with advice — as a registered AdviceProblem. Its canonical
// scheme is ConstantAdvice.
func MSTProblem() AdviceProblem { return mstp.Problem{} }

// TopologyRecognition returns the second registered advice problem:
// every node must output the graph's topology class (a 30-bit
// 1-dimensional Weisfeiler–Leman fingerprint). Its canonical scheme is
// TopoFlood(0).
func TopologyRecognition() AdviceProblem { return topo.Problem{} }

// TopoFlood returns the flooding topology scheme: the oracle writes the
// class at beacon nodes (every radius+1 BFS levels) and every other node
// learns it from the nearest beacon's flood. Radius 0 tags only the
// root — fewest advice bits, eccentricity-many rounds; larger radii
// spend more advice to cut rounds, tracing the paper's (m, t) tradeoff
// on the second problem.
func TopoFlood(radius int) Scheme { return topo.Flood{Radius: radius} }

// TopoDirect returns the (30, 0) topology scheme: the oracle writes the
// class at every node and the decoder answers in zero rounds.
func TopoDirect() Scheme { return topo.Direct{} }

// TopoClass returns the topology class the recognition problem must
// output on g: the low 30 bits of its 1-WL fingerprint.
func TopoClass(g *Graph) int { return topo.Class(g) }

// TopoLowerBoundFamily is a family of pairwise non-isomorphic graphs
// indistinguishable at one target node, pinning the advice lower bound
// for topology recognition (the pigeonhole argument of Theorem 1,
// replayed for the second problem).
type TopoLowerBoundFamily = topo.Family

// NewTopoLowerBoundFamily builds k chord-position variants of the
// n-cycle for the topology lower-bound experiment.
func NewTopoLowerBoundFamily(n, k int) (*TopoLowerBoundFamily, error) { return topo.NewFamily(n, k) }

// ConstantAdviceRounds returns the exact round count of the Theorem 3
// decoder on n nodes and the paper's 9⌈log n⌉ bound.
func ConstantAdviceRounds(n int) (exact, paper int) { return core.RoundBound(n) }

// Schedule is the Theorem 3 decoder's fixed round schedule: converge —
// choose — broadcast windows per Borůvka phase, shared by oracle and
// decoder so nodes need no per-phase coordination.
type Schedule = core.Schedule

// NewSchedule builds the schedule for n nodes with the given advice cap.
func NewSchedule(n, cap int) Schedule { return core.NewSchedule(n, cap) }

// Decomposition is the deterministic Borůvka decomposition of §2.2
// (Lemmas 1–2): the per-phase fragment structure the oracle encodes and
// the decoder replays.
type Decomposition = boruvka.Decomposition

// BoruvkaOptions tune Decompose (parallel worker count).
type BoruvkaOptions = boruvka.Options

// Decompose runs the deterministic Borůvka decomposition of g rooted at
// root.
func Decompose(g *Graph, root NodeID) (*Decomposition, error) { return boruvka.Decompose(g, root) }

// DecomposeOpt is Decompose with explicit options.
func DecomposeOpt(g *Graph, root NodeID, opt BoruvkaOptions) (*Decomposition, error) {
	return boruvka.DecomposeOpt(g, root, opt)
}

// Hierarchical-advice re-exports (internal/hier and the boruvka
// contraction tower; see DESIGN.md §2.9). DecomposeOpt with
// BoruvkaOptions.KeepTower retains the full contraction tower; the
// mst-hier-l schemes spend fewer advice bits at a coarser tower level
// in exchange for a fixed number of extra decompression rounds; tiered
// snapshots persist coarse instances the serving layer hands out as
// standalone flat snapshots.
type (
	// Tower is the full Borůvka contraction tower of a decomposition:
	// one contracted multigraph per phase boundary (set
	// BoruvkaOptions.KeepTower).
	Tower = boruvka.Tower
	// TowerLevel is one level of the tower.
	TowerLevel = boruvka.TowerLevel
	// HierOptions select the tier levels (or a per-node advice-bit
	// budget) for BuildAdviceTiers.
	HierOptions = hier.HierOptions
	// AdviceTier is one coarse tier carried by a version-3 snapshot:
	// the contracted graph, its root, the original-edge hints and the
	// coarse Theorem 3 advice.
	AdviceTier = store.Tier
	// TierReply is the serving layer's coarse-tier answer: a standalone
	// flat snapshot any client of the flat scheme can decode.
	TierReply = service.TierReply
)

// HierScheme returns the hierarchical advising scheme "mst-hier-l<level>"
// for the given tower level (values below 1 clamp to 1, levels past the
// last contraction clamp to the coarsest): shorter advice built from the
// contraction tower, decoded by an unmodified local scheme in
// HierRounds(n) rounds.
func HierScheme(level int) Scheme { return hier.Scheme{Level: level} }

// HierRounds returns the fixed, level-oblivious round count of the
// hierarchical decoder on n nodes (the "extra decompression rounds"
// axis of the bits-vs-rounds frontier, EXPERIMENTS.md E13).
func HierRounds(n int) int { return hier.Rounds(n) }

// BuildAdviceTiers builds the coarse snapshot tiers of g at the levels
// (or bit budget) selected by opt, ready to attach to Snapshot.Tiers.
func BuildAdviceTiers(g *Graph, root NodeID, opt HierOptions) ([]AdviceTier, error) {
	return hier.BuildTiers(g, root, opt)
}

// Generator re-exports. All take an explicit random source and reproduce
// the same graph for the same seed.
type (
	// GenOptions configure weight assignment and port/ID shuffling.
	GenOptions = gen.Options
	// WeightMode selects distinct, random or unit edge weights.
	WeightMode = gen.WeightMode
)

// Weight modes.
const (
	WeightsDistinct = gen.WeightsDistinct
	WeightsRandom   = gen.WeightsRandom
	WeightsUnit     = gen.WeightsUnit
)

// GenPath returns the n-node path.
func GenPath(n int, rng *rand.Rand, opt GenOptions) *Graph { return gen.Path(n, rng, opt) }

// GenRing returns the n-node cycle.
func GenRing(n int, rng *rand.Rand, opt GenOptions) *Graph { return gen.Ring(n, rng, opt) }

// GenGrid returns the rows x cols grid.
func GenGrid(rows, cols int, rng *rand.Rand, opt GenOptions) *Graph {
	return gen.Grid(rows, cols, rng, opt)
}

// GenComplete returns K_n.
func GenComplete(n int, rng *rand.Rand, opt GenOptions) *Graph { return gen.Complete(n, rng, opt) }

// GenRandomConnected returns a connected graph with n nodes and about m
// edges.
func GenRandomConnected(n, m int, rng *rand.Rand, opt GenOptions) *Graph {
	return gen.RandomConnected(n, m, rng, opt)
}

// GenExpander returns the union of k random Hamiltonian cycles.
func GenExpander(n, k int, rng *rand.Rand, opt GenOptions) *Graph {
	return gen.Expander(n, k, rng, opt)
}

// GenSeededOptions configure the seeded parallel generators.
type GenSeededOptions = gen.SeededOptions

// GenSeeded builds a graph of the named family (any name in
// GenFamilyNames) with counter-mode seeded randomness: the result is a
// pure function of (name, n, seed) — bit-identical for any worker
// count — and generation runs in parallel (DESIGN.md §2.12).
func GenSeeded(name string, n int, seed uint64, opt GenSeededOptions) (*Graph, error) {
	return gen.BuildSeeded(name, n, seed, opt)
}

// GenFamilyNames lists the registered graph-family names accepted by
// GenSeeded.
func GenFamilyNames() []string { return gen.Names() }

// Lower-bound re-exports (Theorem 1).
type (
	// Gn is the paper's Figure 1 graph.
	Gn = lowerbound.Gn
	// LowerBoundFamily is the indistinguishable instance family at one
	// spine node of G_n.
	LowerBoundFamily = lowerbound.Family
)

// BuildGn constructs the lower-bound graph G_n on 2n nodes.
func BuildGn(n int) (*Gn, error) { return lowerbound.BuildGn(n, 0) }

// NewLowerBoundFamily builds the k = n-i instance family at spine node
// u_i of G_n.
func NewLowerBoundFamily(n, i int) (*LowerBoundFamily, error) { return lowerbound.NewFamily(n, i) }

// Dynamic-network re-exports: batched in-place updates, the MST
// sensitivity oracle, the incremental advice advisor and the simulator's
// deterministic fault scenarios (see internal/dynamic and DESIGN.md
// §2.4).
type (
	// Batch is one atomic set of graph updates: weight changes, then
	// deletions. Apply with Graph.ApplyBatch or through a DynamicAdvisor.
	Batch = graph.Batch
	// WeightUpdate assigns a new weight to one edge.
	WeightUpdate = graph.WeightUpdate
	// Sensitivity is the per-edge MST tolerance analysis of a snapshot.
	Sensitivity = dynamic.Sensitivity
	// DynamicAdvisor keeps Theorem 3 advice up to date across updates,
	// re-encoding only nodes whose fragment structure changed.
	DynamicAdvisor = dynamic.Advisor
	// Scenario is a deterministic fault schedule for a run (link
	// failures, repairs, weight perturbations); set RunOptions.Scenario.
	Scenario = sim.Scenario
	// ScenarioEvent is one scheduled fault.
	ScenarioEvent = sim.ScenarioEvent
	// ScenarioAction is the kind of a scheduled fault.
	ScenarioAction = sim.ScenarioAction
)

// Scenario actions.
const (
	ActionLinkDown  = sim.ActionLinkDown
	ActionLinkUp    = sim.ActionLinkUp
	ActionSetWeight = sim.ActionSetWeight
)

// AnalyzeSensitivity computes the MST and per-edge tolerances of g: how
// far a tree edge's weight can rise (to its replacement edge's weight),
// or a non-tree edge's fall (to its cycle's tree-path maximum), before
// the MST changes.
func AnalyzeSensitivity(g *Graph) (*Sensitivity, error) { return dynamic.Analyze(g) }

// NewDynamicAdvisor builds the incremental advice maintainer for g
// rooted at root, with the paper's default advice budget. The advisor
// takes ownership of g; mutate it only through its Update method.
func NewDynamicAdvisor(g *Graph, root NodeID) (*DynamicAdvisor, error) {
	return dynamic.NewAdvisor(g, root, core.DefaultCap)
}

// NonTreeLinkFailures builds a deterministic Scenario failing k non-tree
// links from the given round onward; the Theorem 3 decoder provably
// survives it once setup is over (round >= 2).
func NonTreeLinkFailures(s *Sensitivity, k, round int) *Scenario {
	return dynamic.NonTreeLinkFailures(s, k, round)
}

// Store and serving-layer re-exports (internal/store, internal/service;
// see DESIGN.md §2.6). A Snapshot persists an oracle run — graph, root
// and per-node advice — in the versioned binary format served by the
// mstadviced daemon; an AdviceService answers concurrent per-node advice
// queries from registered snapshots and absorbs batched updates behind
// copy-on-write epochs.
type (
	// Snapshot is one stored oracle run.
	Snapshot = store.Snapshot
	// AdviceService is the sharded in-memory advice server.
	AdviceService = service.Service
	// AdviceEpoch is one immutable published state of a served graph.
	AdviceEpoch = service.Epoch
)

// SaveSnapshot writes a snapshot to path (atomic rename).
func SaveSnapshot(path string, s *Snapshot) error { return store.Save(path, s) }

// LoadSnapshot reads and decodes the snapshot at path.
func LoadSnapshot(path string) (*Snapshot, error) { return store.Load(path) }

// OpenSnapshot decodes the snapshot at path through a read-only memory
// mapping where the platform supports one (falling back to LoadSnapshot).
func OpenSnapshot(path string) (*Snapshot, error) { return store.OpenMapped(path) }

// NewAdviceService returns an empty advice server; register snapshots
// with its Register method and serve it with service.NewHandler (or the
// mstadviced daemon).
func NewAdviceService() *AdviceService { return service.New() }

// Replication-layer re-exports (internal/replica, internal/chaos; see
// DESIGN.md §2.10). A primary AdviceService attaches an EpochLog to its
// publish hook, so every published epoch lands in a durable CRC-framed
// log; a Replica tails that log over TCP into its own service
// (consistent-prefix reads); a ReplicaClient spreads reads over the
// endpoints with failover, stale-epoch detection and degraded
// coarse-tier fallback; and a ChaosProxy injects deterministic,
// seed-scheduled connection faults to prove the guarantees hold.
type (
	// EpochLog is the append-only epoch history of a primary: one
	// CRC-framed record per published epoch, fsynced when durable.
	EpochLog = replica.Log
	// EpochRecord is one log entry: a graph's epoch as an encoded,
	// self-contained snapshot.
	EpochRecord = replica.EpochRecord
	// ReplicaServer serves the binary replication protocol: advice,
	// tier and info reads plus the epoch-log tail stream.
	ReplicaServer = replica.Server
	// ReplicaServerOptions tune a ReplicaServer (TierOnly is the
	// memory-pressure degraded mode).
	ReplicaServerOptions = replica.ServerOptions
	// Replica is a follower: it tails a primary's epoch log and
	// publishes each record through the copy-on-write path.
	Replica = replica.Replica
	// ReplicaOptions tune a follower's reconnect backoff and local log.
	ReplicaOptions = replica.ReplicaOptions
	// ReplicaClient reads advice from a replicated endpoint set:
	// round-robin, failover, per-graph monotone epochs.
	ReplicaClient = replica.Client
	// ReplicaClientOptions tune the failover read path.
	ReplicaClientOptions = replica.ClientOptions
	// ChaosProxy is the deterministic fault-injecting TCP proxy.
	ChaosProxy = chaos.Proxy
	// ChaosSchedule derives each proxied connection's fault from a seed.
	ChaosSchedule = chaos.Schedule
)

// OpenEpochLog opens (or creates) the durable epoch log at path,
// replaying existing records and truncating a torn tail; an empty path
// yields a purely in-memory log.
func OpenEpochLog(path string) (*EpochLog, error) { return replica.OpenLog(path) }

// NewReplicaServer serves svc and its epoch log over the binary
// replication protocol; call Listen to bind it.
func NewReplicaServer(svc *AdviceService, log *EpochLog, opts ReplicaServerOptions) *ReplicaServer {
	return replica.NewServer(svc, log, opts)
}

// NewReplica builds a follower of the primary at addr publishing into
// svc; call Run to start tailing.
func NewReplica(svc *AdviceService, addr string, opts ReplicaOptions) *Replica {
	return replica.NewReplica(svc, addr, opts)
}

// NewReplicaClient builds a failover read client over the endpoint set.
func NewReplicaClient(endpoints []string, opts ReplicaClientOptions) (*ReplicaClient, error) {
	return replica.NewClient(endpoints, opts)
}

// NewChaosProxy listens on an ephemeral port and forwards connections
// to target, injecting the schedule's deterministic faults.
func NewChaosProxy(target string, sched ChaosSchedule) (*ChaosProxy, error) {
	return chaos.NewProxy(target, sched)
}

// TreeLabel is a proof-labeling certificate (root identifier, depth) for
// one node of a claimed rooted spanning tree.
type TreeLabel = verifylabel.Label

// AssignTreeLabels computes the certificates for a claimed parent-port
// output (validating that it is a spanning tree).
func AssignTreeLabels(g *Graph, parentPorts []int) ([]TreeLabel, error) {
	return verifylabel.Assign(g, parentPorts)
}

// VerifyTreeLabels runs the one-round distributed verifier: every node
// exchanges labels with its neighbours once and checks local consistency.
// It returns the global verdict and the per-node ones.
func VerifyTreeLabels(g *Graph, parentPorts []int, labels []TreeLabel) (bool, []bool, error) {
	return verifylabel.Check(g, parentPorts, labels)
}
