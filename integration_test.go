package mstadvice

// Cross-scheme integration matrix: every scheme against every family
// (including the ones outside the default experiment set), tie-heavy
// weights, the adversarial G_n construction, and a randomized small-n
// sweep. These tests are the reproduction's confidence backbone: each run
// is verified to produce exactly the unique rooted MST.

import (
	"math/rand"
	"testing"

	"mstadvice/internal/graph/gen"
)

// TestMatrixAllFamilies exercises all schemes on the full family zoo.
func TestMatrixAllFamilies(t *testing.T) {
	families := []string{"path", "ring", "grid", "tree", "random", "expander",
		"star", "caterpillar", "binarytree", "complete", "wheel", "lollipop"}
	for _, fname := range families {
		fam, err := gen.ByName(fname)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []WeightMode{WeightsDistinct, WeightsUnit} {
			rng := rand.New(rand.NewSource(int64(len(fname)) + int64(mode)*37))
			g := fam.Build(24, rng, GenOptions{Weights: mode})
			root := NodeID(rng.Intn(g.N()))
			for _, s := range Schemes() {
				res, err := Run(s, g, root, RunOptions{})
				if err != nil {
					t.Fatalf("%s on %s/%v: %v", s.Name(), fname, mode, err)
				}
				if !res.Verified {
					t.Fatalf("%s on %s/%v: not the MST: %v", s.Name(), fname, mode, res.VerifyErr)
				}
				// Advice schemes must root at the requested node; the
				// no-advice baselines pick their own canonical root.
				switch s.Name() {
				case "trivial", "oneround", "core", "core-adaptive":
					if res.Root != root {
						t.Fatalf("%s on %s: root %d, want %d", s.Name(), fname, res.Root, root)
					}
				}
			}
		}
	}
}

// TestMatrixOnGn runs every scheme on the Theorem 1 adversarial graph —
// structured, bridge-connected, and maximally tie-heavy.
func TestMatrixOnGn(t *testing.T) {
	gn, err := BuildGn(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Schemes() {
		res, err := Run(s, gn.G, 0, RunOptions{})
		if err != nil {
			t.Fatalf("%s on G_10: %v", s.Name(), err)
		}
		if !res.Verified {
			t.Fatalf("%s on G_10: %v", s.Name(), res.VerifyErr)
		}
	}
}

// TestMatrixRandomSweep is a randomized small-n stress over shapes, weight
// modes and roots for the advice schemes (the baselines are covered above
// and are much slower).
func TestMatrixRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(20260611))
	families := gen.Families()
	schemes := []Scheme{Trivial(), OneRound(), ConstantAdvice(), ConstantAdviceAdaptive()}
	for trial := 0; trial < 120; trial++ {
		fam := families[rng.Intn(len(families))]
		n := 2 + rng.Intn(59)
		mode := WeightMode(rng.Intn(3))
		g := fam.Build(n, rng, GenOptions{Weights: mode})
		root := NodeID(rng.Intn(g.N()))
		s := schemes[trial%len(schemes)]
		res, err := Run(s, g, root, RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: %s on %s n=%d mode=%v: %v", trial, s.Name(), fam.Name, g.N(), mode, err)
		}
		if !res.Verified || res.Root != root {
			t.Fatalf("trial %d: %s on %s n=%d mode=%v: verified=%v root=%d/%d (%v)",
				trial, s.Name(), fam.Name, g.N(), mode, res.Verified, res.Root, root, res.VerifyErr)
		}
	}
}

// TestProfilesOnLollipop pins the shape story on the adversarial family:
// the 12-bit scheme is logarithmic while both CONGEST baselines pay
// linearly for the tail.
func TestProfilesOnLollipop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Lollipop(120, rng, GenOptions{})
	rounds := map[string]int{}
	for _, name := range []string{"core", "noadvice", "pipeline"} {
		s, _ := SchemeByName(name)
		res, err := Run(s, g, 0, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("%s: %v", name, res.VerifyErr)
		}
		rounds[name] = res.Rounds
	}
	if rounds["core"]*3 > rounds["noadvice"] || rounds["core"]*3 > rounds["pipeline"] {
		t.Fatalf("separation missing on lollipop: %v", rounds)
	}
}
