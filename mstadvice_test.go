package mstadvice

import (
	"math/rand"
	"testing"
)

// The facade integration test: every public scheme solves every public
// generator family exactly, with the profiles the paper promises.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*Graph{
		"path":   GenPath(40, rng, GenOptions{}),
		"ring":   GenRing(40, rng, GenOptions{}),
		"grid":   GenGrid(6, 6, rng, GenOptions{}),
		"k12":    GenComplete(12, rng, GenOptions{Weights: WeightsUnit}),
		"random": GenRandomConnected(50, 140, rng, GenOptions{}),
		"expand": GenExpander(50, 3, rng, GenOptions{}),
	}
	for gname, g := range graphs {
		for _, s := range Schemes() {
			res, err := Run(s, g, 0, RunOptions{})
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), gname, err)
			}
			if !res.Verified {
				t.Fatalf("%s on %s: not the MST: %v", s.Name(), gname, res.VerifyErr)
			}
			switch s.Name() {
			case "trivial":
				if res.Rounds != 0 {
					t.Fatalf("trivial used %d rounds", res.Rounds)
				}
			case "oneround":
				if res.Rounds != 1 {
					t.Fatalf("oneround used %d rounds", res.Rounds)
				}
			case "core":
				if res.Advice.MaxBits > 12 {
					t.Fatalf("core used %d advice bits", res.Advice.MaxBits)
				}
			case "localgather", "noadvice", "pipeline":
				if res.Advice.TotalBits != 0 {
					t.Fatalf("%s used advice", s.Name())
				}
			}
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, want := range []string{"trivial", "oneround", "core", "core-adaptive", "localgather", "noadvice", "pipeline"} {
		s, ok := SchemeByName(want)
		if !ok || s.Name() != want {
			t.Fatalf("SchemeByName(%q) failed", want)
		}
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Fatal("unknown scheme found")
	}
}

func TestBuilderFacade(t *testing.T) {
	g, err := NewBuilder(3).
		AddEdge(0, 1, 4).
		AddEdge(1, 2, 2).
		AddEdge(0, 2, 7).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ConstantAdvice(), g, 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Root != 2 {
		t.Fatalf("facade run failed: %+v", res)
	}
	// MST is {0-1, 1-2}: node 0's parent is node 1.
	if g.HalfAt(0, res.ParentPorts[0]).To != 1 {
		t.Fatal("wrong tree")
	}
}

func TestConstantAdviceRounds(t *testing.T) {
	exact, paper := ConstantAdviceRounds(1024)
	if exact <= 0 || paper != 90 {
		t.Fatalf("RoundBound(1024) = %d, %d", exact, paper)
	}
}

func TestLowerBoundFacade(t *testing.T) {
	gn, err := BuildGn(8)
	if err != nil {
		t.Fatal(err)
	}
	if gn.G.N() != 16 {
		t.Fatalf("Gn has %d nodes", gn.G.N())
	}
	fam, err := NewLowerBoundFamily(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := fam.Experiment(1)
	if res.Served != 2 || res.K != 5 {
		t.Fatalf("experiment: %+v", res)
	}
}
