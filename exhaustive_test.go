package mstadvice

// Exhaustive verification on tiny instances: every labelled connected
// graph on 4 nodes (38 of them), every root, two weight regimes, for the
// three advice schemes. Exhaustive small-case coverage catches boundary
// bugs (singleton fragments, two-node fragments, early-completing
// decompositions) that random sweeps can miss.

import (
	"testing"
)

// fourNodeEdges enumerates the 6 possible edges of K4.
var fourNodeEdges = [6][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

func connectedMask(mask int) bool {
	adj := [4][4]bool{}
	for i, e := range fourNodeEdges {
		if mask&(1<<uint(i)) != 0 {
			adj[e[0]][e[1]] = true
			adj[e[1]][e[0]] = true
		}
	}
	seen := [4]bool{}
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < 4; v++ {
			if adj[u][v] && !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == 4
}

func buildMask(t *testing.T, mask int, distinct bool) *Graph {
	t.Helper()
	b := NewBuilder(4)
	w := Weight(1)
	for i, e := range fourNodeEdges {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if distinct {
			b.AddEdge(e[0], e[1], Weight(i+1))
		} else {
			b.AddEdge(e[0], e[1], 1)
		}
		w++
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExhaustiveFourNodeGraphs(t *testing.T) {
	schemes := []Scheme{Trivial(), OneRound(), ConstantAdvice(), ConstantAdviceAdaptive()}
	graphs := 0
	for mask := 0; mask < 64; mask++ {
		if !connectedMask(mask) {
			continue
		}
		graphs++
		for _, distinct := range []bool{true, false} {
			g := buildMask(t, mask, distinct)
			for root := NodeID(0); root < 4; root++ {
				for _, s := range schemes {
					res, err := Run(s, g, root, RunOptions{})
					if err != nil {
						t.Fatalf("mask=%06b distinct=%v root=%d %s: %v", mask, distinct, root, s.Name(), err)
					}
					if !res.Verified || res.Root != root {
						t.Fatalf("mask=%06b distinct=%v root=%d %s: verified=%v root=%d (%v)",
							mask, distinct, root, s.Name(), res.Verified, res.Root, res.VerifyErr)
					}
				}
			}
		}
	}
	if graphs != 38 {
		t.Fatalf("enumerated %d connected graphs on 4 labelled nodes, want 38", graphs)
	}
}

// The same exhaustive sweep for the no-advice baselines (fewer cells:
// they choose their own root).
func TestExhaustiveFourNodeBaselines(t *testing.T) {
	schemes := []Scheme{LocalGather(), NoAdvice(), Pipeline()}
	for mask := 0; mask < 64; mask++ {
		if !connectedMask(mask) {
			continue
		}
		for _, distinct := range []bool{true, false} {
			g := buildMask(t, mask, distinct)
			for _, s := range schemes {
				res, err := Run(s, g, 0, RunOptions{})
				if err != nil {
					t.Fatalf("mask=%06b distinct=%v %s: %v", mask, distinct, s.Name(), err)
				}
				if !res.Verified {
					t.Fatalf("mask=%06b distinct=%v %s: %v", mask, distinct, s.Name(), res.VerifyErr)
				}
			}
		}
	}
}
